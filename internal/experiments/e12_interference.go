package experiments

import (
	"fmt"
	"time"

	"repro/internal/consistency"
	"repro/internal/db"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/netlink"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// E12 QoS class names.
const (
	e12Gold   = "gold"   // the victim tenant's class
	e12Silver = "silver" // background tenants
	e12Bulk   = "bulk"   // the noisy neighbor
)

// E12 scenario scale. The noisy neighbor runs several independent drain
// sessions (a tenant with many volumes, each its own copy session), which
// is what makes FIFO fan-in hurt: the victim's batch queues behind all of
// them, not just one.
const (
	e12NoisyDrains = 8   // independent flood copy-sessions
	e12NoisyWrites = 400 // blocks written per flood session
	e12BgTenants   = 2   // light background tenants
	e12BgWrites    = 60  // paced writes per background tenant
)

// InterferenceResult is one E12 scenario's outcome: what the victim tenant
// experienced while the noisy neighbor flooded the shared fabric.
type InterferenceResult struct {
	Scenario string
	Links    int
	Noisy    bool

	VictimOrders     int64
	VictimMeanRPO    time.Duration // sampled every 10ms while orders ran
	VictimMaxRPO     time.Duration
	VictimMeanXfer   time.Duration // mean fabric transfer (drain) latency
	VictimQueueDelay time.Duration // mean ingress queueing delay (scheduled fabrics)
	VictimCatchUp    time.Duration // drain time to empty after the last order
	NoisyBytes       int64
	Consistent       bool // every tenant's applied image is a consistent cut

	// Link-failure scenario only: bytes during the member-0 outage.
	LinkFailure   bool
	ReroutedBytes int64 // carried by the surviving member during the outage
	DeadLinkBytes int64 // carried by the partitioned member during the outage
}

// e12Scenario selects the fabric policy under test.
type e12Scenario struct {
	name        string
	links       []netlink.Config
	classes     []fabric.ClassConfig
	noisy       bool
	linkFailure bool
	window      int // per-link in-flight window (0 = stop-and-wait default)
}

func e12Scenarios() []e12Scenario {
	// A deliberately thin inter-site pipe: 4MB/s per member, 2ms one-way.
	// One flood batch (64 x ~4KiB records) serializes in ~67ms, so FIFO
	// fan-in behind eight flood sessions costs the victim ~0.5s per batch.
	base := netlink.Config{Propagation: 2 * time.Millisecond, BandwidthBps: 4e6}
	weighted := []fabric.ClassConfig{
		{Name: e12Gold, Weight: 8},
		{Name: e12Silver, Weight: 2},
		{Name: e12Bulk, Weight: 1},
	}
	dedicated := []fabric.ClassConfig{
		{Name: e12Gold, Weight: 8, Links: []int{1}},
		{Name: e12Silver, Weight: 2, Links: []int{0}},
		{Name: e12Bulk, Weight: 1, Links: []int{0}},
	}
	return []e12Scenario{
		{name: "baseline", links: []netlink.Config{base}},
		{name: "no-qos", links: []netlink.Config{base}, noisy: true},
		{name: "weighted", links: []netlink.Config{base}, classes: weighted, noisy: true},
		{name: "dedicated", links: []netlink.Config{base, base}, classes: dedicated, noisy: true},
		{name: "link-failure", links: []netlink.Config{base, base}, classes: weighted, noisy: true, linkFailure: true},
	}
}

// E12Interference measures cross-tenant interference on the shared
// inter-site fabric: a victim tenant runs paced OLTP while a noisy
// neighbor floods eight copy sessions, under (a) no QoS on one shared
// link, (b) weighted QoS classes, (c) a dedicated victim link, plus (d) a
// two-member fabric losing a link mid-run. The shape the paper's scale-out
// story needs: victim degradation is worst under (a), bounded under (b),
// near the no-noise baseline under (c), and (d) reroutes without breaking
// any tenant's consistency cut.
func E12Interference(seed int64, orders int) ([]InterferenceResult, error) {
	if orders <= 0 {
		orders = 40
	}
	var out []InterferenceResult
	for _, sc := range e12Scenarios() {
		r, err := e12Run(seed, sc, orders)
		if err != nil {
			return out, fmt.Errorf("E12 %s: %w", sc.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// E12InterferenceWindowed reruns the scheduled E12 scenarios (the ones with
// QoS classes — passthrough fabrics have no dispatcher to window) with a
// per-link in-flight window. The QoS shape and every consistency cut must
// survive pipelining: DRR still picks who serializes next, the window only
// overlaps serialization with propagation.
func E12InterferenceWindowed(seed int64, orders, window int) ([]InterferenceResult, error) {
	if orders <= 0 {
		orders = 40
	}
	var out []InterferenceResult
	for _, sc := range e12Scenarios() {
		if len(sc.classes) == 0 {
			continue
		}
		sc.window = window
		sc.name = fmt.Sprintf("%s/w%d", sc.name, window)
		r, err := e12Run(seed, sc, orders)
		if err != nil {
			return out, fmt.Errorf("E12 %s: %w", sc.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func e12Run(seed int64, sc e12Scenario, orders int) (InterferenceResult, error) {
	res := InterferenceResult{
		Scenario: sc.name, Links: len(sc.links), Noisy: sc.noisy, LinkFailure: sc.linkFailure,
	}
	env := sim.NewEnv(seed)
	// Generous controller parallelism keeps the arrays out of the way: the
	// interference under test is the fabric's, not the media's.
	scfg := storage.Config{Parallelism: 32}
	main := storage.NewArray(env, "main", scfg)
	backup := storage.NewArray(env, "backup", scfg)
	fab := fabric.New(env, fabric.Config{Links: sc.links, Classes: sc.classes, WindowPerLink: sc.window})

	mkPair := func(id storage.VolumeID, blocks int64) error {
		if _, err := main.CreateVolume(id, blocks); err != nil {
			return err
		}
		_, err := backup.CreateVolume(id, blocks)
		return err
	}

	// Victim tenant: the standard two-volume shop on a consistency group.
	for _, id := range []storage.VolumeID{"v-sales", "v-stock"} {
		if err := mkPair(id, 2048); err != nil {
			return res, err
		}
	}
	vj, err := main.CreateConsistencyGroup("cg-victim", []storage.VolumeID{"v-sales", "v-stock"})
	if err != nil {
		return res, err
	}
	victimPath := fab.Path(e12Gold, "victim")
	vg, err := replication.NewGroup(env, "victim", vj, backup,
		ident("v-sales", "v-stock"), victimPath, replication.Config{BatchMax: 16})
	if err != nil {
		return res, err
	}
	vg.Start()

	// Noisy neighbor: independent single-volume copy sessions that flood.
	noisyPath := fab.Path(e12Bulk, "noisy")
	var others []*replication.Group
	var noisyVols []storage.VolumeID
	if sc.noisy {
		for k := 0; k < e12NoisyDrains; k++ {
			id := storage.VolumeID(fmt.Sprintf("noisy-%d", k))
			if err := mkPair(id, 512); err != nil {
				return res, err
			}
			j, err := main.CreateConsistencyGroup("cg-"+string(id), []storage.VolumeID{id})
			if err != nil {
				return res, err
			}
			g, err := replication.NewGroup(env, string(id), j, backup,
				ident(id), noisyPath, replication.Config{BatchMax: 64})
			if err != nil {
				return res, err
			}
			g.Start()
			others = append(others, g)
			noisyVols = append(noisyVols, id)
		}
	}

	// Background tenants: light paced writers in their own class.
	var bgVols []storage.VolumeID
	for b := 0; b < e12BgTenants; b++ {
		id := storage.VolumeID(fmt.Sprintf("bg-%d", b))
		if err := mkPair(id, 512); err != nil {
			return res, err
		}
		j, err := main.CreateConsistencyGroup("cg-"+string(id), []storage.VolumeID{id})
		if err != nil {
			return res, err
		}
		g, err := replication.NewGroup(env, string(id), j, backup,
			ident(id), fab.Path(e12Silver, string(id)), replication.Config{BatchMax: 16})
		if err != nil {
			return res, err
		}
		g.Start()
		others = append(others, g)
		bgVols = append(bgVols, id)
	}

	// Open the victim databases (writes replicate from the first block, so
	// no initial copy is needed) and wire the paced shop.
	var shop *workload.Shop
	var bootErr error
	env.Process("bootstrap", func(p *sim.Proc) {
		salesVol, _ := main.Volume("v-sales")
		stockVol, _ := main.Volume("v-stock")
		sales, err := db.Open(p, "v-sales", salesVol, db.Config{})
		if err != nil {
			bootErr = err
			return
		}
		stock, err := db.Open(p, "v-stock", stockVol, db.Config{})
		if err != nil {
			bootErr = err
			return
		}
		shop = workload.NewShop(env, sales, stock, workload.Config{
			Seed:      seed,
			ThinkTime: 10 * time.Millisecond,
		})
	})
	env.Run(0)
	if bootErr != nil {
		return res, bootErr
	}

	// RPO sampler: the victim's backup lag while its orders run.
	victimDone := false
	var rpoSum time.Duration
	var rpoN int
	env.Process("rpo-sampler", func(p *sim.Proc) {
		for !victimDone {
			r := vg.RPO(p.Now())
			rpoSum += r
			if r > res.VictimMaxRPO {
				res.VictimMaxRPO = r
			}
			rpoN++
			p.Sleep(10 * time.Millisecond)
		}
	})

	// The flood: each session dirties its whole volume as fast as the
	// array accepts, building a deep journal backlog immediately.
	for _, id := range noisyVols {
		id := id
		env.Process("flood:"+string(id), func(p *sim.Proc) {
			vol, _ := main.Volume(id)
			buf := make([]byte, main.Config().BlockSize)
			buf[0] = 0xF1
			for i := 0; i < e12NoisyWrites; i++ {
				if _, err := vol.Write(p, int64(i)%vol.SizeBlocks(), buf); err != nil {
					panic(fmt.Sprintf("E12 flood: %v", err))
				}
			}
		})
	}
	for _, id := range bgVols {
		id := id
		env.Process("bg:"+string(id), func(p *sim.Proc) {
			vol, _ := main.Volume(id)
			buf := make([]byte, main.Config().BlockSize)
			buf[0] = 0xB6
			for i := 0; i < e12BgWrites; i++ {
				if _, err := vol.Write(p, int64(i)%vol.SizeBlocks(), buf); err != nil {
					panic(fmt.Sprintf("E12 bg: %v", err))
				}
				p.Sleep(5 * time.Millisecond)
			}
		})
	}

	// Mid-run member-link failure: partition member 0 during the flood and
	// account who carried bytes during the outage.
	if sc.linkFailure {
		env.Process("chaos", func(p *sim.Proc) {
			p.Sleep(150 * time.Millisecond)
			l0, l1 := fab.Links()[0], fab.Links()[1]
			pre0, pre1 := l0.SentBytes(), l1.SentBytes()
			l0.Partition()
			p.Sleep(300 * time.Millisecond)
			res.DeadLinkBytes = l0.SentBytes() - pre0
			res.ReroutedBytes = l1.SentBytes() - pre1
			l0.Heal()
		})
	}

	// Victim driver: run the orders, measure, drain, verify every tenant.
	var verr error
	env.Process("victim", func(p *sim.Proc) {
		defer func() { victimDone = true }()
		if err := shop.Run(p, orders); err != nil {
			verr = fmt.Errorf("victim orders: %w", err)
			return
		}
		victimDone = true
		res.VictimOrders = shop.Completed.Value()
		if rpoN > 0 {
			res.VictimMeanRPO = rpoSum / time.Duration(rpoN)
		}
		cuStart := p.Now()
		vg.CatchUp(p)
		res.VictimCatchUp = p.Now() - cuStart

		// Freeze the victim's backup image and verify the consistent cut.
		grp, err := backup.CreateSnapshotGroup("verify-"+sc.name, []storage.VolumeID{"v-sales", "v-stock"})
		if err != nil {
			verr = err
			return
		}
		salesView, err := db.OpenView(p, "v-sales@verify", grp.Snapshot("v-sales"), db.Config{})
		if err != nil {
			verr = err
			return
		}
		stockView, err := db.OpenView(p, "v-stock@verify", grp.Snapshot("v-stock"), db.Config{})
		if err != nil {
			verr = err
			return
		}
		rep := consistency.Verify(salesView, stockView, shop.SalesCommitOrder(), shop.StockCommitOrder())
		res.Consistent = !rep.Collapsed() && rep.OrderingOK() &&
			rep.LostSalesTxns == 0 && rep.LostStockTxns == 0

		// Drain the neighbors fully and check their cuts too: every copy
		// session must have applied everything it journaled, in order.
		for _, g := range others {
			g.CatchUp(p)
		}
		for _, g := range others {
			if g.Backlog() != 0 || !e12ApplyOrderOK(g) {
				res.Consistent = false
			}
		}
		for _, g := range append(others, vg) {
			g.Stop()
		}
		fab.Stop()
	})
	env.Run(0)
	recordKernel("e12/"+sc.name, env)
	if verr != nil {
		return res, verr
	}
	res.VictimMeanXfer = victimPath.MeanTransferTime()
	res.VictimQueueDelay = victimPath.MeanQueueDelay()
	res.NoisyBytes = noisyPath.Bytes()
	return res, nil
}

// e12ApplyOrderOK checks a group applied its records in strictly
// increasing journal-sequence order — the per-session consistency cut.
func e12ApplyOrderOK(g *replication.Group) bool {
	var last int64
	for _, r := range g.ApplyLog() {
		if r.Seq <= last {
			return false
		}
		last = r.Seq
	}
	return true
}

// E12Table renders the E12 results.
func E12Table(results []InterferenceResult) *metrics.Table {
	t := metrics.NewTable("E12: cross-tenant interference on the inter-site fabric — noisy neighbor vs QoS policy",
		"scenario", "links", "victim mean RPO", "max RPO", "mean drain xfer", "queue delay", "catch-up", "noisy MB", "consistent")
	for _, r := range results {
		noisyMB := float64(r.NoisyBytes) / 1e6
		t.AddRow(r.Scenario, r.Links, r.VictimMeanRPO, r.VictimMaxRPO,
			r.VictimMeanXfer, r.VictimQueueDelay, r.VictimCatchUp, noisyMB, r.Consistent)
	}
	for _, r := range results {
		if r.LinkFailure {
			t.AddNote("link-failure: member 0 down 150ms-450ms; surviving member carried %.2fMB (dead member %.2fMB)",
				float64(r.ReroutedBytes)/1e6, float64(r.DeadLinkBytes)/1e6)
		}
	}
	t.AddNote("shape: victim degradation no-qos >> weighted > dedicated ~= baseline; cuts never break, even across a member-link failure")
	return t
}
