package experiments

import (
	"fmt"
	"testing"
)

// TestE17AutopilotHoldsSLOWhereStaticViolates pins the E17 reproduction
// shape: under the diurnal peak, static provisioning breaches the gold RPO
// target while the autopilot — sensing only the probed telemetry series —
// holds every declared target in both steady-state windows, and all three
// effectors demonstrably fire. The full cycle must close: lanes added at
// the peak edge are handed back at night, and admission caps end lifted.
func TestE17AutopilotHoldsSLOWhereStaticViolates(t *testing.T) {
	res, err := E17Autopilot(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StaticViolates {
		t.Errorf("static run held the gold target (worst peak RPO %v vs target %v) — scenario too easy",
			res.Static.WorstPeakRPO, res.GoldTarget)
	}
	if !res.AutoHolds {
		t.Errorf("autopilot breached a target: peak %v, night %v vs target %v",
			res.Auto.WorstPeakRPO, res.Auto.WorstNightRPO, res.GoldTarget)
	}
	// Every effector fired, in both directions where a direction exists.
	if res.ReshardUps == 0 || res.ReshardDowns == 0 {
		t.Errorf("reshard loop did not close: ups=%d downs=%d", res.ReshardUps, res.ReshardDowns)
	}
	if res.Derates == 0 || res.Restores == 0 {
		t.Errorf("admission loop did not close: derates=%d restores=%d", res.Derates, res.Restores)
	}
	if res.Placings == 0 {
		t.Errorf("placement policy never placed a lane")
	}
	// The give-back is real: every gold tenant ends the run back at one lane.
	for i, lanes := range res.Auto.FinalLanes {
		if lanes != 1 {
			t.Errorf("gold-%d ended with %d lanes, want 1 (scale-down incomplete)", i, lanes)
		}
	}
	// Derating must not have starved bulk outright: the shed class still
	// moved the same bytes the static run did (caps defer, not drop).
	if res.Auto.BulkBytes != res.Static.BulkBytes {
		t.Errorf("autopilot changed bulk's delivered bytes: %d vs static %d",
			res.Auto.BulkBytes, res.Static.BulkBytes)
	}
	if len(res.Decisions) == 0 || res.DecisionLog == "" {
		t.Error("no decision log recorded")
	}
	t.Log("\n" + E17Table(res).String() + "\n" + res.DecisionLog)
}

// TestAutopilotDeterminism pins the control plane's determinism claim: the
// same E17 world run on the sequential scheduler and on 4 workers yields a
// BYTE-identical decision log and an identical (at, seq) kernel trace. The
// autopilot ticks, reconcile-driven reshards, and fabric dispatchers all
// run domain-0 steps, so the parallel scheduler cannot reorder any sensing
// or actuation relative to the tenants' parallel subgraphs.
func TestAutopilotDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, seqAp, seqSys, err := e17Run(seed, 1, true, true)
			if err != nil {
				t.Fatal(err)
			}
			_, parAp, parSys, err := e17Run(seed, 4, true, true)
			if err != nil {
				t.Fatal(err)
			}
			seqLog, parLog := seqAp.FormatLog(), parAp.FormatLog()
			if seqLog == "" {
				t.Fatal("sequential run made no decisions — determinism test degenerate")
			}
			if seqLog != parLog {
				t.Fatalf("decision log diverged between schedulers:\nsequential:\n%s\nparallel:\n%s", seqLog, parLog)
			}
			st, pt := seqSys.Env.Trace(), parSys.Env.Trace()
			if len(st) != len(pt) {
				t.Fatalf("kernel trace length diverged: sequential %d steps, parallel %d", len(st), len(pt))
			}
			for i := range st {
				if st[i] != pt[i] {
					t.Fatalf("kernel trace diverged at step %d: sequential %+v, parallel %+v", i, st[i], pt[i])
				}
			}
		})
	}
}
