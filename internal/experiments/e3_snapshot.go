package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/storage"
)

// SnapshotResult is one row of experiment E3.
type SnapshotResult struct {
	Volumes          int
	OverwriteFrac    float64
	CreateTime       time.Duration // snapshot-group creation (user-visible)
	Atomic           bool          // all members at the same instant
	COWBlocks        int           // originals preserved across the group
	WriteAmplFactor  float64       // extra block copies per overwrite
	SnapshotReadable bool          // originals still readable post-overwrite
}

// E3SnapshotGroup measures the snapshot-development step (Fig. 5): group
// snapshots are created atomically and cost nothing up front; the
// copy-on-write cost arrives only as the parents are overwritten. The sweep
// varies the fraction of blocks overwritten after the snapshot.
//
// Expected shape: creation is instantaneous and atomic at every size; COW
// blocks scale with overwritten blocks (amplification factor ~1, charged
// once per block).
func E3SnapshotGroup(seed int64, volumeCounts []int, overwriteFracs []float64) ([]SnapshotResult, error) {
	const volBlocks = 256
	var out []SnapshotResult
	for _, n := range volumeCounts {
		for _, frac := range overwriteFracs {
			env := sim.NewEnv(seed)
			array := storage.NewArray(env, "backup", storage.Config{})
			var vols []storage.VolumeID
			for i := 0; i < n; i++ {
				id := storage.VolumeID(fmt.Sprintf("vol-%03d", i))
				if _, err := array.CreateVolume(id, volBlocks); err != nil {
					return nil, err
				}
				vols = append(vols, id)
			}
			// Preload every block so overwrites have originals to preserve.
			env.Process("preload", func(p *sim.Proc) {
				for _, id := range vols {
					v, _ := array.Volume(id)
					for b := int64(0); b < volBlocks; b++ {
						buf := make([]byte, array.Config().BlockSize)
						buf[0] = byte(b)
						if _, err := v.Write(p, b, buf); err != nil {
							panic(err)
						}
					}
				}
			})
			env.Run(0)

			createStart := env.Now()
			group, err := array.CreateSnapshotGroup("grp", vols)
			if err != nil {
				return nil, err
			}
			res := SnapshotResult{
				Volumes:       n,
				OverwriteFrac: frac,
				CreateTime:    env.Now() - createStart,
				Atomic:        true,
			}
			for _, s := range group.Snapshots() {
				if s.TakenAt() != group.TakenAt() {
					res.Atomic = false
				}
			}

			// Overwrite a fraction of each parent and re-overwrite once
			// more (COW must charge only the first overwrite).
			over := int64(frac * volBlocks)
			env.Process("overwrite", func(p *sim.Proc) {
				for _, id := range vols {
					v, _ := array.Volume(id)
					for round := 0; round < 2; round++ {
						for b := int64(0); b < over; b++ {
							buf := make([]byte, array.Config().BlockSize)
							buf[0] = 0xFF
							if _, err := v.Write(p, b, buf); err != nil {
								panic(err)
							}
						}
					}
				}
			})
			env.Run(0)

			var cow int64
			for _, id := range vols {
				v, _ := array.Volume(id)
				cow += v.COWCopies()
			}
			res.COWBlocks = int(cow)
			if over > 0 {
				res.WriteAmplFactor = float64(cow) / float64(over*int64(n)*2)
			}
			// Snapshot must still serve the pre-overwrite content.
			res.SnapshotReadable = true
			for _, s := range group.Snapshots() {
				for b := int64(0); b < over; b++ {
					if got := s.Peek(b); got[0] != byte(b) {
						res.SnapshotReadable = false
					}
				}
			}
			recordKernel(fmt.Sprintf("e3/volumes=%d,frac=%.1f", n, frac), env)
			out = append(out, res)
		}
	}
	return out, nil
}

// E3Table renders E3 results.
func E3Table(results []SnapshotResult) *metrics.Table {
	t := metrics.NewTable("E3: snapshot-group creation and copy-on-write cost (Fig. 5)",
		"volumes", "overwrite", "create time", "atomic", "COW blocks", "write ampl", "readable")
	for _, r := range results {
		t.AddRow(r.Volumes, r.OverwriteFrac, r.CreateTime, r.Atomic, r.COWBlocks, r.WriteAmplFactor, r.SnapshotReadable)
	}
	t.AddNote("shape: creation instantaneous+atomic at every size; COW cost proportional to first overwrites only")
	return t
}
