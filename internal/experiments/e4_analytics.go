package experiments

import (
	"fmt"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// AnalyticsResult is one row of experiment E4.
type AnalyticsResult struct {
	Scenario      string
	OrderMean     time.Duration // main-site order latency during the window
	RPOAfter      time.Duration
	AnalyticsTime time.Duration // snapshot open + full scans
	OrdersSeen    int           // orders the analytics saw (frozen count)
	JoinUnmatched int
}

// E4Analytics measures the data-analytics step (Fig. 6): running analytics
// against backup-site snapshots affects neither the main site's order
// latency nor replication's RPO, and the analytics see a frozen, consistent
// image.
//
// Expected shape: order latency and RPO identical with and without
// analytics; join finds zero unmatched rows.
func E4Analytics(seed int64, orders int) ([]AnalyticsResult, error) {
	run := func(withAnalytics bool) (AnalyticsResult, error) {
		name := "no analytics"
		if withAnalytics {
			name = "analytics on snapshot"
		}
		res := AnalyticsResult{Scenario: name}
		sys := core.NewSystem(core.Config{Seed: seed})
		var runErr error
		sys.Env.Process("e4", func(p *sim.Proc) {
			bp, err := sys.DeployBusinessProcess(p, "shop")
			if err != nil {
				runErr = err
				return
			}
			if err := sys.EnableBackup(p, "shop"); err != nil {
				runErr = err
				return
			}
			// Warm-up orders, snapshot, then the measured window.
			if err := bp.Shop.Run(p, orders/2); err != nil {
				runErr = err
				return
			}
			sys.CatchUp(p, "shop")
			group, err := sys.SnapshotBackup(p, "shop", "e4")
			if err != nil {
				runErr = err
				return
			}
			frozenOrders := orders / 2

			// Measured window: main-site orders continue; analytics
			// optionally hammer the snapshot concurrently. Reset the
			// histogram so the window's latency is isolated from warm-up.
			bp.Shop.Latency.Reset()
			done := sys.Env.NewEvent()
			if withAnalytics {
				sys.Env.Process("analytics", func(ap *sim.Proc) {
					defer done.Trigger()
					start := ap.Now()
					salesView, stockView, err := sys.AnalyticsDBs(ap, "shop", group)
					if err != nil {
						runErr = err
						return
					}
					sales, err := analytics.Sales(ap, salesView)
					if err != nil {
						runErr = err
						return
					}
					join, err := analytics.Join(ap, salesView, stockView)
					if err != nil {
						runErr = err
						return
					}
					res.AnalyticsTime = ap.Now() - start
					res.OrdersSeen = sales.Orders
					res.JoinUnmatched = join.Unmatched
					if sales.Orders != frozenOrders {
						runErr = fmt.Errorf("analytics saw %d orders, want frozen %d", sales.Orders, frozenOrders)
					}
				})
			} else {
				done.Trigger()
			}
			if err := bp.Shop.Run(p, orders/2); err != nil {
				runErr = err
				return
			}
			p.Wait(done)
			sys.CatchUp(p, "shop")
			res.RPOAfter = sys.RPO("shop")
			res.OrderMean = bp.Shop.Latency.Mean()
		})
		sys.Env.Run(time.Hour)
		sys.Stop() // quiesce so bench iterations do not accumulate parked procs
		sys.Env.Run(time.Hour + time.Second)
		recordKernel(fmt.Sprintf("e4/analytics=%v", withAnalytics), sys.Env)
		return res, runErr
	}
	base, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("E4 baseline: %w", err)
	}
	with, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("E4 analytics: %w", err)
	}
	return []AnalyticsResult{base, with}, nil
}

// E4Table renders E4 results.
func E4Table(results []AnalyticsResult) *metrics.Table {
	t := metrics.NewTable("E4: analytics on backup snapshots — zero interference (Fig. 6)",
		"scenario", "order mean", "RPO after", "analytics time", "orders seen", "join unmatched")
	for _, r := range results {
		t.AddRow(r.Scenario, r.OrderMean, r.RPOAfter, r.AnalyticsTime, r.OrdersSeen, r.JoinUnmatched)
	}
	t.AddNote("shape: order latency and RPO identical across scenarios; analytics see a frozen consistent image")
	return t
}
