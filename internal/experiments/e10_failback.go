package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/netlink"
	"repro/internal/replication"
	"repro/internal/sim"
)

// FailbackResult is one row of experiment E10.
type FailbackResult struct {
	OutageOrders int // orders processed at the backup during the outage
	DeltaBlocks  int
	FullBlocks   int // what a full resync would copy
	ResyncTime   time.Duration
	SavingsX     float64 // full / delta
	ReverseOK    bool    // post-resync writes replicate in reverse
}

// E10Failback extends the paper's DR story past the demo: after a disaster
// and failover, the main site returns and is resynchronized from the
// backup using the delta bitmap (changed-at-backup plus stranded-at-main
// blocks). The sweep grows the outage length — more production at the
// backup means a bigger delta — and compares against the full-copy
// baseline a bitmap-less resync would need.
//
// Expected shape: delta blocks grow with outage length but stay well under
// the full copy; resync time scales with the delta, not the dataset.
func E10Failback(seed int64, outageOrders []int) ([]FailbackResult, error) {
	var out []FailbackResult
	for i, n := range outageOrders {
		r, err := newRig(rigParams{
			seed: seed + int64(i),
			mode: ModeADC,
			link: netlink.Config{Propagation: 2 * time.Millisecond, BandwidthBps: 1e8},
		})
		if err != nil {
			return nil, fmt.Errorf("E10 outage=%d: %w", n, err)
		}
		// Steady state before the disaster: order history plus a bulk
		// dataset (the databases' cold data), all fully replicated. This
		// is what a bitmap-less full resync would recopy.
		if _, err := r.runOrders(400); err != nil {
			return nil, err
		}
		r.env.Process("bulk-load", func(p *sim.Proc) {
			sv, _ := r.main.Volume("sales")
			kv, _ := r.main.Volume("stock")
			buf := make([]byte, r.main.Config().BlockSize)
			for b := int64(500); b < 2000; b++ {
				sv.Write(p, b, buf)
				kv.Write(p, b, buf)
			}
		})
		r.env.Run(0)
		r.catchUp()
		// Disaster: partition, a little stranded work, failover.
		r.links.Partition()
		r.env.Process("stranded", func(p *sim.Proc) { r.shop.Run(p, 3) })
		r.env.Run(r.env.Now() + 50*time.Millisecond)
		if _, err := r.groups[0].Failover(); err != nil {
			return nil, err
		}
		r.env.Run(0)

		// Production continues at the backup site during the outage. The
		// backup DBs are recovered copies; for the resync measurement we
		// write blocks directly (the delta bitmap is block-level).
		bs, _ := r.backup.Volume("sales")
		bk, _ := r.backup.Volume("stock")
		// Production rewrites a hot working set (databases hammer their WAL
		// region and hot pages), so the delta saturates at the working-set
		// size rather than growing without bound.
		r.env.Process("outage-production", func(p *sim.Proc) {
			buf := make([]byte, r.backup.Config().BlockSize)
			for w := 0; w < n; w++ {
				bs.Write(p, int64(1200+w%100), buf)
				bk.Write(p, int64(1200+w%100), buf)
			}
		})
		r.env.Run(0)

		// The main site returns.
		r.links.Heal()
		var res FailbackResult
		res.OutageOrders = n
		var fbErr error
		r.env.Process("failback", func(p *sim.Proc) {
			start := p.Now()
			reverse, stats, err := replication.Failback(p, r.groups[0], r.main, r.links.Reverse, replication.Config{})
			if err != nil {
				fbErr = err
				return
			}
			res.ResyncTime = p.Now() - start
			res.DeltaBlocks = stats.DeltaBlocks
			res.FullBlocks = stats.TotalBlocks
			if stats.DeltaBlocks > 0 {
				res.SavingsX = float64(stats.TotalBlocks) / float64(stats.DeltaBlocks)
			}
			// Verify the reverse direction carries new production.
			buf := make([]byte, r.backup.Config().BlockSize)
			buf[0] = 0x5A
			bs.Write(p, 1999, buf)
			reverse.CatchUp(p)
			sv, _ := r.main.Volume("sales")
			res.ReverseOK = sv.Peek(1999)[0] == 0x5A
			reverse.Stop()
		})
		r.env.Run(0)
		recordKernel(fmt.Sprintf("e10/outage=%d", n), r.env)
		if fbErr != nil {
			return nil, fmt.Errorf("E10 outage=%d: %w", n, fbErr)
		}
		out = append(out, res)
	}
	return out, nil
}

// E10Table renders E10 results.
func E10Table(results []FailbackResult) *metrics.Table {
	t := metrics.NewTable("E10: failback delta resync after outage (DR extension, §I context)",
		"outage writes", "delta blocks", "full-copy blocks", "resync time", "savings", "reverse ok")
	for _, r := range results {
		t.AddRow(r.OutageOrders, r.DeltaBlocks, r.FullBlocks, r.ResyncTime, fmt.Sprintf("%.1fx", r.SavingsX), r.ReverseOK)
	}
	t.AddNote("shape: delta grows with outage, stays well under full copy; resync time tracks the delta")
	return t
}
