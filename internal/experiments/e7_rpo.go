package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/netlink"
	"repro/internal/sim"
)

// RPOResult is one row of experiment E7.
type RPOResult struct {
	Mode       Mode
	RTT        time.Duration
	Bandwidth  float64
	MeanRPO    time.Duration
	MaxRPO     time.Duration
	MaxBacklog int
}

// E7RPO measures the data-loss exposure of asynchronous copy (§I: "owing to
// network delays, data loss at the backup site is inevitable"): the
// workload runs continuously while a monitor samples each group's RPO; the
// sweep varies link bandwidth and RTT. SDC rows are included as the zero
// baseline (its ack already includes the remote apply).
//
// Expected shape: ADC RPO grows as bandwidth shrinks (the link saturates)
// and tracks RTT when bandwidth is ample; SDC is always 0.
func E7RPO(seed int64, rtts []time.Duration, bandwidths []float64, duration time.Duration) ([]RPOResult, error) {
	var out []RPOResult
	for _, rtt := range rtts {
		for _, bw := range bandwidths {
			r, err := newRig(rigParams{
				seed: seed,
				mode: ModeADC,
				link: netlink.Config{Propagation: rtt / 2, BandwidthBps: bw},
			})
			if err != nil {
				return nil, fmt.Errorf("E7 rtt=%v bw=%g: %w", rtt, bw, err)
			}
			series := metrics.NewSeries("rpo")
			var maxBacklog int
			start := r.env.Now()
			deadline := start + duration
			r.env.Process("orders", func(p *sim.Proc) { r.shop.RunUntil(p, deadline) })
			r.env.Process("monitor", func(p *sim.Proc) {
				for p.Now() < deadline {
					p.Sleep(5 * time.Millisecond)
					var worst time.Duration
					var backlog int
					for _, g := range r.groups {
						if v := g.RPO(p.Now()); v > worst {
							worst = v
						}
						backlog += g.Backlog()
					}
					series.Append(p.Now(), float64(worst))
					if backlog > maxBacklog {
						maxBacklog = backlog
					}
				}
			})
			r.env.Run(0)
			r.stop()
			recordKernel(fmt.Sprintf("e7/rtt=%v,bw=%.0e", rtt, bw), r.env)
			out = append(out, RPOResult{
				Mode:       ModeADC,
				RTT:        rtt,
				Bandwidth:  bw,
				MeanRPO:    time.Duration(series.Mean()),
				MaxRPO:     time.Duration(series.Max()),
				MaxBacklog: maxBacklog,
			})
		}
	}
	// SDC baseline: RPO is structurally zero (remote apply precedes the
	// ack), reported for the table's completeness.
	for _, rtt := range rtts {
		out = append(out, RPOResult{Mode: ModeSDC, RTT: rtt, Bandwidth: bandwidths[len(bandwidths)-1]})
	}
	return out, nil
}

// E7Table renders E7 results.
func E7Table(results []RPOResult) *metrics.Table {
	t := metrics.NewTable("E7: RPO (data-loss window) vs link capacity (paper §I/§III-A1)",
		"mode", "rtt", "bandwidth B/s", "mean RPO", "max RPO", "max backlog")
	for _, r := range results {
		t.AddRow(string(r.Mode), r.RTT, fmt.Sprintf("%.0e", r.Bandwidth), r.MeanRPO, r.MaxRPO, r.MaxBacklog)
	}
	t.AddNote("shape: ADC RPO grows as the link saturates; SDC RPO is always 0 (but E5 shows its cost)")
	return t
}
