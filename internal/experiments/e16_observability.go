package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/netlink"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ObservabilityResult summarizes one E16 telemetry-plane run.
type ObservabilityResult struct {
	Tenants      int
	Joined       int
	Resharded    int
	FailedOver   int
	OrdersPlaced int64
	Verified     int
	SamplePeriod time.Duration

	// Telemetry-plane inventory: what the run exported.
	SeriesCount int // probed time series (RPO, backlogs, queue depths, ...)
	SpanCount   int // trace events (spans + instants + track metadata)
	ExportBytes int // size of the Chrome trace-event JSON export

	// TopRPO ranks the worst-RPO tenants over the whole run — the query the
	// autopilot's placement policy will consume.
	TopRPO []telemetry.SeriesRank

	// Cross-validation of the probed RPO timelines against the fleet's own
	// in-process sampler: the worst per-tenant |probe max - sampler max|
	// over each tenant's active window. Both sample at multiples of the
	// period and RPO grows with slope 1 between acks, so the divergence is
	// bounded by one sample interval.
	ValidatedTenants int
	MaxRPODelta      time.Duration

	// Registry is the run's live instrument registry; callers export it via
	// Registry.ExportJSON (the -telemetry flag of cmd/experiments).
	Registry *telemetry.Registry

	SimTime time.Duration
	Workers int
	Kernel  sim.Stats
}

// E16Observability runs a churning fleet — mid-run join, live reshard, and
// site failovers — with the sim-time telemetry plane enabled: per-tenant RPO
// probes sampled on the virtual clock, span tracing over epoch drains,
// reshard migration windows, reconcile passes and tenant lifecycle, and
// fabric/controller instruments, all exported as deterministic Chrome
// trace-event JSON. It then cross-validates the probed RPO timelines against
// the fleet's own sampler: each tenant's probed maximum must agree within
// one sample interval.
func E16Observability(seed int64, tenants, ordersPerTenant, workers int) (ObservabilityResult, error) {
	const period = 250 * time.Millisecond
	if tenants < 2 {
		tenants = 2
	}
	f := fleet.New(fleet.Config{
		Tenants:         tenants,
		OrdersPerTenant: ordersPerTenant,
		Workers:         workers,
		StartBarrier:    true,
		// The fleet sampler and the telemetry probes share one period, so
		// their observation instants coincide and the cross-validation bound
		// below is exactly one interval.
		RPOSample: period,
		// ThinkTime paces each tenant's orders so the OLTP phases span
		// seconds of virtual time — enough sample intervals for the RPO
		// timelines to show real shape instead of completing inside one.
		Workload: workload.Config{ThinkTime: 300 * time.Millisecond},
		Joins:    []fleet.JoinSpec{{After: 4 * time.Second}},
		Reshards: []fleet.ReshardSpec{{Tenant: tenants / 2, After: 2 * time.Second, Shards: 2}},
		System: core.Config{Seed: seed, VolumeBlocks: 256,
			Storage: storage.Config{BlockSize: 512},
			// A fat-RTT, thin pipe keeps records in flight for longer than a
			// sample period, so probed RPO is non-zero and the top-k ranking
			// is a real ordering rather than all ties at zero.
			Link:      netlink.Config{Propagation: 200 * time.Millisecond, BandwidthBps: 2e6},
			Telemetry: &telemetry.Config{SamplePeriod: period}},
	})
	if err := f.Run(); err != nil {
		return ObservabilityResult{}, fmt.Errorf("E16: %w", err)
	}
	recordKernel(fmt.Sprintf("e16/tenants=%d,workers=%d", tenants, workers), f.Sys.Env)
	tot := f.Totals()
	reg := f.Sys.Telemetry
	end := f.Sys.Env.Now()
	ex := reg.Snapshot()
	exJSON, err := reg.ExportJSON()
	if err != nil {
		return ObservabilityResult{}, fmt.Errorf("E16: export: %w", err)
	}
	res := ObservabilityResult{
		Tenants:      len(f.Tenants),
		FailedOver:   tot.FailedOver,
		OrdersPlaced: tot.OrdersPlaced,
		Verified:     tot.Verified,
		SamplePeriod: period,
		SeriesCount:  len(ex.Series),
		SpanCount:    len(ex.TraceEvents),
		ExportBytes:  len(exJSON),
		TopRPO:       reg.TopK("rpo", 5, 0, end),
		Registry:     reg,
		SimTime:      end,
		Workers:      workers,
		Kernel:       f.Sys.Env.Stats(),
	}
	for _, t := range f.Tenants {
		if t.Join {
			res.Joined++
		}
		if t.Resharded {
			res.Resharded++
		}
	}

	// Cross-validate every tenant's probed RPO timeline against the fleet
	// sampler's MaxRPO over the tenant's active window [ready, failover/end].
	for _, t := range f.Tenants {
		s := reg.Series("rpo", telemetry.L("tenant", t.Namespace))
		if s == nil {
			return res, fmt.Errorf("E16: tenant %s has no probed RPO series", t.Namespace)
		}
		from := t.TimeToReady
		if t.Join {
			from = t.JoinedAt
		}
		to := end
		if t.Failover && t.FailoverAt > 0 {
			to = t.FailoverAt
		}
		pts := s.Window(from, to)
		if len(pts) == 0 {
			continue // active window shorter than one sample interval
		}
		var probed float64
		for _, pt := range pts {
			if pt.Value > probed {
				probed = pt.Value
			}
		}
		delta := time.Duration(probed) - t.MaxRPO
		if delta < 0 {
			delta = -delta
		}
		res.ValidatedTenants++
		if delta > res.MaxRPODelta {
			res.MaxRPODelta = delta
		}
		if delta > period {
			return res, fmt.Errorf("E16: tenant %s probed RPO max %v diverges from sampled max %v by %v (> one %v interval)",
				t.Namespace, time.Duration(probed), t.MaxRPO, delta, period)
		}
	}
	if res.ValidatedTenants == 0 {
		return res, fmt.Errorf("E16: no tenant RPO timeline was validated")
	}
	if res.FailedOver == 0 || res.Resharded == 0 || res.Joined == 0 {
		return res, fmt.Errorf("E16: churn incomplete: %d failovers, %d reshards, %d joins",
			res.FailedOver, res.Resharded, res.Joined)
	}
	return res, nil
}

// E16Table renders the E16 result, including the worst-RPO tenant ranking.
func E16Table(r ObservabilityResult) *metrics.Table {
	t := metrics.NewTable("E16: sim-time telemetry plane — probes, spans, and deterministic export under churn",
		"metric", "value")
	t.AddRow("tenant namespaces (incl. joins)", r.Tenants)
	t.AddRow("tenants joined mid-run", r.Joined)
	t.AddRow("tenants resharded live", r.Resharded)
	t.AddRow("tenants failed over mid-run", r.FailedOver)
	t.AddRow("orders placed (fleet)", r.OrdersPlaced)
	t.AddRow("tenants verified consistent", r.Verified)
	t.AddRow("probe sample period", r.SamplePeriod)
	t.AddRow("probed time series exported", r.SeriesCount)
	t.AddRow("trace events exported", r.SpanCount)
	t.AddRow("export size (bytes)", r.ExportBytes)
	t.AddRow("RPO timelines cross-validated", r.ValidatedTenants)
	t.AddRow("worst probe-vs-sampler RPO delta", r.MaxRPODelta)
	for i, rank := range r.TopRPO {
		t.AddRow(fmt.Sprintf("worst RPO #%d: %s", i+1, rank.Key),
			fmt.Sprintf("%v at t=%v", time.Duration(rank.Max), rank.At))
	}
	t.AddRow("fleet virtual time", r.SimTime)
	t.AddRow("scheduler workers", r.Workers)
	t.AddNote("shape: probed RPO agrees with the in-process sampler within one interval; export is byte-deterministic")
	return t
}
