package experiments

import (
	"fmt"
	"time"

	"repro/internal/consistency"
	"repro/internal/db"
	"repro/internal/metrics"
	"repro/internal/netlink"
	"repro/internal/sim"
	"repro/internal/storage"
)

// RecoveryResult is one row of experiment E8.
type RecoveryResult struct {
	Mode           Mode
	Orders         int
	RecoveryTime   time.Duration // simulated downtime: WAL replay of both DBs
	RecoveredTxns  int
	BusinessIntact bool // cross-DB verification passed
}

// E8Recovery measures the downtime half of the paper's claim: after a
// disaster, how long does backup-site recovery take and does it yield a
// usable system? The sweep grows the amount of committed-but-uncheckpointed
// work (the WAL replay recovery must do). It runs once in the consistent
// configuration and once without consistency groups, where recovery
// completes per database but the business process is broken when the image
// collapsed.
//
// Expected shape: recovery time grows with WAL backlog; BusinessIntact is
// always true for ADC+CG and frequently false for ADC-noCG.
func E8Recovery(seed int64, orderCounts []int, mode Mode) ([]RecoveryResult, error) {
	var out []RecoveryResult
	for i, orders := range orderCounts {
		r, err := newRig(rigParams{
			seed: seed + int64(i),
			mode: mode,
			link: netlink.Config{Propagation: 3 * time.Millisecond, BandwidthBps: 4e6, Jitter: 2 * time.Millisecond},
		})
		if err != nil {
			return nil, fmt.Errorf("E8 orders=%d: %w", orders, err)
		}
		// Drive the workload and cut mid-stream so the WAL at the backup
		// carries real replay work.
		r.env.Process("orders", func(p *sim.Proc) { r.shop.Run(p, orders) })
		r.env.Run(r.env.Now() + time.Duration(40+orders)*time.Millisecond)
		group, err := r.backup.CreateSnapshotGroup("disaster", []storage.VolumeID{"sales", "stock"})
		if err != nil {
			return nil, err
		}
		for _, g := range r.groups {
			g.Stop()
		}
		var rec RecoveryResult
		rec.Mode = mode
		rec.Orders = orders
		var verr error
		r.env.Process("recover", func(p *sim.Proc) {
			start := p.Now()
			salesView, err := db.OpenView(p, "sales@rec", group.Snapshot("sales"), db.Config{})
			if err != nil {
				verr = err
				return
			}
			stockView, err := db.OpenView(p, "stock@rec", group.Snapshot("stock"), db.Config{})
			if err != nil {
				verr = err
				return
			}
			rec.RecoveryTime = p.Now() - start
			rec.RecoveredTxns = salesView.RecoveredTxns() + stockView.RecoveredTxns()
			rep := consistency.Verify(salesView, stockView,
				r.shop.SalesCommitOrder(), r.shop.StockCommitOrder())
			rec.BusinessIntact = !rep.Collapsed() && rep.OrderingOK()
		})
		r.env.Run(0)
		recordKernel(fmt.Sprintf("e8/%s,orders=%d", mode, orders), r.env)
		if verr != nil {
			return nil, verr
		}
		out = append(out, rec)
	}
	return out, nil
}

// E8Table renders E8 results.
func E8Table(results []RecoveryResult) *metrics.Table {
	t := metrics.NewTable("E8: backup-site recovery (downtime) vs replay volume (paper §I claim)",
		"mode", "orders", "recovery time", "replayed txns", "business intact")
	for _, r := range results {
		t.AddRow(string(r.Mode), r.Orders, r.RecoveryTime, r.RecoveredTxns, r.BusinessIntact)
	}
	t.AddNote("shape: recovery time grows with replay volume; intact=true needs the consistency group")
	return t
}
