package experiments

import (
	"flag"
	"testing"
	"time"
)

// fleetTenants sizes the E11 parallel-scheduler smoke test. The default is
// small so `go test -race ./...` (make ci) stays cheap; raise it to stress
// the parallel kernel at scale: go test -race -run E11FleetSmoke \
// ./internal/experiments -fleet.tenants=64
var fleetTenants = flag.Int("fleet.tenants", 8, "tenant count for the E11 parallel smoke test")

// These tests assert the SHAPE of each experiment's result — the
// reproduction criteria from DESIGN.md: who wins, by roughly what factor,
// and which invariants never break.

func TestE5ADCTracksBaselineSDCPaysRTT(t *testing.T) {
	rtts := []time.Duration{2 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond}
	results, err := E5Slowdown(1, rtts, 30)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]SlowdownResult{}
	for _, r := range results {
		byKey[r.RTT.String()+string(r.Mode)] = r
	}
	for _, rtt := range rtts {
		none := byKey[rtt.String()+string(ModeNone)]
		adc := byKey[rtt.String()+string(ModeADC)]
		sdc := byKey[rtt.String()+string(ModeSDC)]
		// ADC within 2x of baseline (journal append cost only).
		if adc.MeanOrder > 2*none.MeanOrder {
			t.Errorf("rtt=%v: ADC %v vs baseline %v — slowdown visible", rtt, adc.MeanOrder, none.MeanOrder)
		}
		// SDC pays at least one RTT per commit (each order commits twice,
		// and each commit's WAL flush crosses the link).
		if sdc.MeanOrder < adc.MeanOrder+rtt {
			t.Errorf("rtt=%v: SDC %v not slower than ADC %v by >= RTT", rtt, sdc.MeanOrder, adc.MeanOrder)
		}
	}
	// SDC degrades with RTT; ADC does not.
	adcSmall := byKey[rtts[0].String()+string(ModeADC)]
	adcBig := byKey[rtts[2].String()+string(ModeADC)]
	if adcBig.MeanOrder > adcSmall.MeanOrder*3/2 {
		t.Errorf("ADC latency grew with RTT: %v -> %v", adcSmall.MeanOrder, adcBig.MeanOrder)
	}
	sdcSmall := byKey[rtts[0].String()+string(ModeSDC)]
	sdcBig := byKey[rtts[2].String()+string(ModeSDC)]
	if sdcBig.MeanOrder < 5*sdcSmall.MeanOrder {
		t.Errorf("SDC latency did not scale with RTT: %v -> %v", sdcSmall.MeanOrder, sdcBig.MeanOrder)
	}
	t.Log("\n" + E5Table(results).String())
}

func TestE6CollapseOnlyWithoutCG(t *testing.T) {
	const trials, orders = 12, 300
	noCG, err := E6Collapse(100, trials, orders, ModeADCNoCG)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := E6Collapse(100, trials, orders, ModeADC)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Collapsed != 0 {
		t.Errorf("consistency group collapsed %d/%d trials — must be 0", cg.Collapsed, cg.Trials)
	}
	if noCG.Collapsed == 0 {
		t.Errorf("per-volume replication never collapsed in %d trials — scenario too easy", trials)
	}
	if cg.OrderingBroken != 0 || noCG.OrderingBroken != 0 {
		t.Errorf("per-volume ordering broke: cg=%d nocg=%d", cg.OrderingBroken, noCG.OrderingBroken)
	}
	t.Log("\n" + E6Table([]CollapseResult{cg, noCG}).String())
}

func TestE7RPOGrowsAsLinkSaturates(t *testing.T) {
	rtts := []time.Duration{10 * time.Millisecond}
	bws := []float64{2e5, 2e6, 1e9}
	results, err := E7RPO(1, rtts, bws, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var slow, fast RPOResult
	for _, r := range results {
		if r.Mode != ModeADC {
			continue
		}
		switch r.Bandwidth {
		case bws[0]:
			slow = r
		case bws[2]:
			fast = r
		}
	}
	if slow.MeanRPO <= fast.MeanRPO {
		t.Errorf("RPO did not grow as bandwidth shrank: %v (slow link) vs %v (fast link)", slow.MeanRPO, fast.MeanRPO)
	}
	if fast.MeanRPO > 50*time.Millisecond {
		t.Errorf("RPO on a fat link = %v, want near the RTT scale", fast.MeanRPO)
	}
	for _, r := range results {
		if r.Mode == ModeSDC && (r.MeanRPO != 0 || r.MaxRPO != 0) {
			t.Errorf("SDC RPO nonzero: %+v", r)
		}
	}
	t.Log("\n" + E7Table(results).String())
}

func TestE8RecoveryGrowsWithReplayAndNeedsCG(t *testing.T) {
	counts := []int{20, 80, 200}
	cg, err := E8Recovery(7, counts, ModeADC)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cg {
		if !r.BusinessIntact {
			t.Errorf("CG recovery not intact at %d orders", r.Orders)
		}
	}
	if !(cg[2].RecoveryTime > cg[0].RecoveryTime) {
		t.Errorf("recovery time flat: %v -> %v", cg[0].RecoveryTime, cg[2].RecoveryTime)
	}
	noCG, err := E8Recovery(7, []int{200, 220, 240, 260}, ModeADCNoCG)
	if err != nil {
		t.Fatal(err)
	}
	broken := 0
	for _, r := range noCG {
		if !r.BusinessIntact {
			broken++
		}
	}
	if broken == 0 {
		t.Error("no-CG recovery always intact — collapse scenario not exercised")
	}
	t.Log("\n" + E8Table(append(cg, noCG...)).String())
}

func TestE2OperatorConstantUserOps(t *testing.T) {
	counts := []int{2, 8, 32}
	results, err := E2Operator(1, counts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.UserOpsNSO != 1 {
			t.Errorf("NSO ops at %d volumes = %d, want 1", r.Volumes, r.UserOpsNSO)
		}
		if r.UserOpsHand <= r.UserOpsNSO*4 {
			t.Errorf("hand ops at %d volumes = %d — not meaningfully worse", r.Volumes, r.UserOpsHand)
		}
	}
	if results[2].UserOpsHand <= results[0].UserOpsHand {
		t.Error("hand operations did not grow with volume count")
	}
	if results[2].TimeToReady <= 0 {
		t.Error("no time-to-ready measured")
	}
	t.Log("\n" + E2Table(results).String())
}

func TestE3SnapshotAtomicAndCOWProportional(t *testing.T) {
	results, err := E3SnapshotGroup(1, []int{2, 8}, []float64{0, 0.25, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Atomic {
			t.Errorf("group of %d not atomic", r.Volumes)
		}
		if r.CreateTime != 0 {
			t.Errorf("creation consumed %v, want instantaneous COW-metadata install", r.CreateTime)
		}
		if !r.SnapshotReadable {
			t.Errorf("snapshot lost originals at overwrite=%v", r.OverwriteFrac)
		}
		wantCOW := int(r.OverwriteFrac * 256 * float64(r.Volumes))
		if r.COWBlocks != wantCOW {
			t.Errorf("COW blocks = %d, want %d (first overwrite only)", r.COWBlocks, wantCOW)
		}
	}
	t.Log("\n" + E3Table(results).String())
}

func TestE4AnalyticsDoNotInterfere(t *testing.T) {
	results, err := E4Analytics(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	base, with := results[0], results[1]
	if with.OrderMean > base.OrderMean*11/10 {
		t.Errorf("analytics slowed main-site orders: %v -> %v", base.OrderMean, with.OrderMean)
	}
	if base.RPOAfter != 0 || with.RPOAfter != 0 {
		t.Errorf("RPO after catch-up: base=%v with=%v", base.RPOAfter, with.RPOAfter)
	}
	if with.OrdersSeen != 20 {
		t.Errorf("analytics saw %d orders, want frozen 20", with.OrdersSeen)
	}
	if with.JoinUnmatched != 0 {
		t.Errorf("join unmatched = %d", with.JoinUnmatched)
	}
	t.Log("\n" + E4Table(results).String())
}

func TestE1EndToEndConsistent(t *testing.T) {
	res, err := E1EndToEnd(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnalyticsOrders != 50 {
		t.Errorf("analytics orders = %d, want 50", res.AnalyticsOrders)
	}
	if !res.Consistent || !res.FailoverIntact {
		t.Errorf("pipeline inconsistent: %+v", res)
	}
	if res.FailoverTime <= 0 {
		t.Error("failover recovery free")
	}
	t.Log("\n" + E1Table(res).String())
}

func TestE9BatchSweepShape(t *testing.T) {
	results, err := E9BatchSweep(1, []int{1, 16, 256}, 150)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Transfers <= results[2].Transfers {
		t.Errorf("transfers did not fall with batch size: %d -> %d", results[0].Transfers, results[2].Transfers)
	}
	t.Log("\n" + E9BatchTable(results).String())
}

func TestE9CGScaleFlat(t *testing.T) {
	results, err := E9CGScale(1, []int{2, 8, 32}, 20)
	if err != nil {
		t.Fatal(err)
	}
	var cg2, cg32 time.Duration
	for _, r := range results {
		if r.Mode == ModeADC && r.Volumes == 2 {
			cg2 = r.MeanCommit
		}
		if r.Mode == ModeADC && r.Volumes == 32 {
			cg32 = r.MeanCommit
		}
	}
	if cg32 > cg2*2 {
		t.Errorf("CG write latency grew with group size: %v -> %v", cg2, cg32)
	}
	t.Log("\n" + E9CGScaleTable(results).String())
}

func TestE10FailbackDeltaBeatsFullCopy(t *testing.T) {
	results, err := E10Failback(1, []int{10, 100, 400})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.ReverseOK {
			t.Errorf("reverse replication broken after %d-write outage", r.OutageOrders)
		}
		if r.DeltaBlocks >= r.FullBlocks {
			t.Errorf("delta %d not smaller than full copy %d", r.DeltaBlocks, r.FullBlocks)
		}
	}
	if !(results[2].DeltaBlocks > results[0].DeltaBlocks) {
		t.Errorf("delta did not grow with outage: %d -> %d", results[0].DeltaBlocks, results[2].DeltaBlocks)
	}
	if !(results[2].ResyncTime > results[0].ResyncTime) {
		t.Errorf("resync time flat: %v -> %v", results[0].ResyncTime, results[2].ResyncTime)
	}
	t.Log("\n" + E10Table(results).String())
}

func TestE9SkewInsensitive(t *testing.T) {
	results, err := E9SkewSweep(1, []float64{-1, 1.2, 2.0}, 60)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := results[0].MeanOrder, results[0].MeanOrder
	for _, r := range results {
		if r.MeanOrder < lo {
			lo = r.MeanOrder
		}
		if r.MeanOrder > hi {
			hi = r.MeanOrder
		}
	}
	if hi > lo*2 {
		t.Errorf("latency varied %v..%v across skews", lo, hi)
	}
	t.Log("\n" + E9SkewTable(results).String())
}

func TestE12InterferenceOrderingAndFailover(t *testing.T) {
	results, err := E12Interference(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]InterferenceResult{}
	for _, r := range results {
		by[r.Scenario] = r
		if !r.Consistent {
			t.Errorf("%s: a tenant's consistency cut broke", r.Scenario)
		}
		if r.VictimOrders == 0 {
			t.Errorf("%s: victim placed no orders", r.Scenario)
		}
	}
	base, noqos, weighted, dedicated := by["baseline"], by["no-qos"], by["weighted"], by["dedicated"]
	failover := by["link-failure"]

	// Who wins: victim degradation is worst with no QoS on the shared
	// fabric, bounded under weighted classes, near-isolated on a
	// dedicated link.
	if noqos.VictimMeanRPO < 3*weighted.VictimMeanRPO {
		t.Errorf("no-qos RPO %v not >> weighted %v", noqos.VictimMeanRPO, weighted.VictimMeanRPO)
	}
	if noqos.VictimMeanXfer < 3*weighted.VictimMeanXfer {
		t.Errorf("no-qos drain xfer %v not >> weighted %v", noqos.VictimMeanXfer, weighted.VictimMeanXfer)
	}
	if weighted.VictimMeanRPO <= dedicated.VictimMeanRPO {
		t.Errorf("weighted RPO %v not above dedicated %v", weighted.VictimMeanRPO, dedicated.VictimMeanRPO)
	}
	if weighted.VictimMeanXfer <= dedicated.VictimMeanXfer {
		t.Errorf("weighted drain xfer %v not above dedicated %v", weighted.VictimMeanXfer, dedicated.VictimMeanXfer)
	}
	if dedicated.VictimMeanRPO > 2*base.VictimMeanRPO+5*time.Millisecond {
		t.Errorf("dedicated link not near-isolated: %v vs baseline %v", dedicated.VictimMeanRPO, base.VictimMeanRPO)
	}
	// Catch-up (drain) latency tells the same story end to end.
	if noqos.VictimCatchUp < 5*weighted.VictimCatchUp {
		t.Errorf("no-qos catch-up %v not >> weighted %v", noqos.VictimCatchUp, weighted.VictimCatchUp)
	}

	// Mid-run member-link failure: traffic reroutes onto the survivor (the
	// dead member carries at most its in-flight batch) and no tenant's
	// consistency cut breaks.
	if failover.ReroutedBytes == 0 {
		t.Error("link failure rerouted no traffic")
	}
	if failover.DeadLinkBytes*5 > failover.ReroutedBytes {
		t.Errorf("dead member carried %dB during its outage vs survivor %dB",
			failover.DeadLinkBytes, failover.ReroutedBytes)
	}
	if !failover.Consistent {
		t.Error("link failure violated a consistency cut")
	}
	t.Log("\n" + E12Table(results).String())
}

func TestE13ShardedThroughputScalesAndCutsHold(t *testing.T) {
	counts := []int{1, 2, 4}
	results, err := E13ShardedThroughput(1, counts, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(counts) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		// The mid-run failover must land mid-drain (some committed, some
		// lost) and the image must be an exact ack-order prefix at EVERY
		// shard count — the epoch barrier's whole point.
		if !r.FailoverConsistent {
			t.Errorf("shards=%d: failover image not an exact prefix (cut=%d lost=%d)", r.Shards, r.CutWrites, r.LostWrites)
		}
		if r.CutWrites == 0 || r.LostWrites == 0 {
			t.Errorf("shards=%d: failover scenario degenerate (cut=%d lost=%d)", r.Shards, r.CutWrites, r.LostWrites)
		}
		if r.Shards > 1 && r.EpochCommits == 0 {
			t.Errorf("shards=%d: no epoch cuts declared", r.Shards)
		}
		if r.Shards == 1 && r.EpochCommits != 0 {
			t.Errorf("shards=1 ran the sharded engine (passthrough broken)")
		}
	}
	// Who wins: drain throughput grows with lane count, >= 2x at 4 shards.
	if results[1].ThroughputMBps <= results[0].ThroughputMBps {
		t.Errorf("2 shards (%.2f MB/s) not faster than 1 (%.2f MB/s)",
			results[1].ThroughputMBps, results[0].ThroughputMBps)
	}
	if results[2].Speedup < 2 {
		t.Errorf("4-shard speedup = %.2fx, want >= 2x", results[2].Speedup)
	}
	t.Log("\n" + E13Table(results).String())
}

func TestE11FleetAllTenantsConsistentAfterMixedRun(t *testing.T) {
	res, err := E11FleetScale(3, 24, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenants != 24 || res.Verified != 24 || res.Collapsed != 0 {
		t.Fatalf("fleet verdicts wrong: %+v", res)
	}
	if res.FailedOver == 0 || res.Analytics == 0 {
		t.Fatalf("mixed workload degenerate: %+v", res)
	}
	if res.OrdersPlaced == 0 || res.BackupApplied == 0 {
		t.Fatalf("fleet did no work: %+v", res)
	}
	// Failover tenants stop mid-run without catch-up, so the fleet-wide
	// order count must be below the no-disaster maximum.
	if res.OrdersPlaced >= int64(24*6) {
		t.Fatalf("failover tenants should cut order volume: %+v", res)
	}
}

// TestE11FleetSmokeParallel runs a small E11 fleet on the parallel scheduler
// (4 workers regardless of host cores). Under `go test -race` — which make
// ci runs — this is the standing data-race smoke for the kernel's parallel
// rounds: tenant subgraphs really do execute on concurrent goroutines here,
// so the race detector sees every cross-domain access pattern the full-scale
// fleet exercises.
func TestE11FleetSmokeParallel(t *testing.T) {
	res, err := E11FleetScaleWorkers(11, *fleetTenants, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified != res.Tenants || res.Collapsed != 0 {
		t.Fatalf("fleet verdicts wrong: %+v", res)
	}
	if res.Kernel.ParallelMerges == 0 || res.Kernel.ParallelSteps == 0 {
		t.Fatalf("parallel scheduler never formed a parallel round: %+v", res.Kernel)
	}
}

func TestE14ElasticityJoinsLeavesAndReclaims(t *testing.T) {
	res, err := E14Elasticity(1, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified != res.Tenants+res.Joined || res.Collapsed != 0 {
		t.Fatalf("verdicts wrong: %+v", res)
	}
	if res.Joined != 2 || res.Left != 1 {
		t.Fatalf("churn degenerate: %+v", res)
	}
	// Joins must reach Ready while the fleet serves load — and one of them
	// must have been in flight while a site failover ran.
	if res.JoinReadyMax <= 0 {
		t.Fatalf("no join time-to-ready measured: %+v", res)
	}
	if !res.JoinDuringFailover {
		t.Fatalf("no join raced a failover: %+v", res)
	}
	// The leave's reclamation invariant: zero residue on both arrays.
	if !res.ReclaimOK || res.ResidueLeaks != 0 {
		t.Fatalf("decommission leaked: %+v", res)
	}
	// Victim disturbance stays bounded: churn may cost the bystanders some
	// RPO, but not an order of magnitude over the steady baseline.
	if res.VictimMaxRPOBase <= 0 {
		t.Fatalf("no baseline victim RPO sampled: %+v", res)
	}
	if res.VictimMaxRPOChurn > 10*res.VictimMaxRPOBase {
		t.Fatalf("churn disturbed victims: %v -> %v", res.VictimMaxRPOBase, res.VictimMaxRPOChurn)
	}
	t.Log("\n" + E14Table(res).String())
}

// TestE15ReshardLiveMigration pins the dynamic-resharding shape: the live
// 1->4 reshard at least doubles drain throughput, migrates only re-placed
// volumes' records, keeps the bystanders committing, survives a failover
// raced into the migration window with an exact epoch-boundary prefix, and
// an unchanged reconcile migrates nothing.
func TestE15ReshardLiveMigration(t *testing.T) {
	res, err := E15Reshard(1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeedupPostVsPre < 2 {
		t.Errorf("post/pre speedup = %.2fx, want >= 2x (pre=%.2f post=%.2f)",
			res.SpeedupPostVsPre, res.PreMBps, res.PostMBps)
	}
	if res.StallTime <= 0 {
		t.Error("migration stall not measured")
	}
	if res.BarrierEpoch == 0 || res.MovedVolumes == 0 || res.MovedRecords == 0 {
		t.Errorf("migration degenerate: %+v", res)
	}
	if res.MovedVolumes >= e15Volumes {
		t.Errorf("all %d volumes moved; the stable hash must keep shard-0 residents in place", res.MovedVolumes)
	}
	if !res.NoopZeroMigration {
		t.Error("unchanged reconcile migrated records or replaced the engine")
	}
	if res.BackgroundOrders == 0 {
		t.Error("bystander tenants placed no orders during the reshard")
	}
	if !res.RacedWindow {
		t.Error("failover run never raced the open migration window")
	}
	if !res.FailoverConsistent {
		t.Errorf("mid-window failover image not an exact prefix: cut=%d lost=%d", res.CutWrites, res.LostWrites)
	}
	if res.CutWrites == 0 || res.LostWrites == 0 {
		t.Errorf("failover scenario degenerate: cut=%d lost=%d", res.CutWrites, res.LostWrites)
	}
	t.Log("\n" + E15Table(res).String())
}

func TestE18PipeFillScalesAndStaysInOrder(t *testing.T) {
	windows := []int{1, 4, 16}
	results, err := E18PipeFill(1, windows, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(windows) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if !r.OrderOK {
			t.Errorf("window=%d: per-link delivery order violated", r.Window)
		}
		if !r.FailoverConsistent {
			t.Errorf("window=%d: failover image not an exact prefix (cut=%d lost=%d)", r.Window, r.CutWrites, r.LostWrites)
		}
		if r.Window > 1 {
			// Every frame committed to the wire at the cut delivers during
			// the partition (at most one extra frame was mid-serialization);
			// nothing queued behind the cut sneaks out.
			if r.DeliveredDuringCut < int64(r.InFlightAtCut) || r.DeliveredDuringCut > int64(r.InFlightAtCut)+1 {
				t.Errorf("window=%d: delivered %d during cut with %d in flight", r.Window, r.DeliveredDuringCut, r.InFlightAtCut)
			}
			if r.InFlightAtCut < 2 {
				t.Errorf("window=%d: cut landed with only %d frames in flight — not mid-window", r.Window, r.InFlightAtCut)
			}
			if r.Pipelined == 0 {
				t.Errorf("window=%d: no overlapped sends recorded", r.Window)
			}
			if r.MaxInFlight > r.Window {
				t.Errorf("window=%d: %d frames in flight exceeds the window", r.Window, r.MaxInFlight)
			}
		}
	}
	// The acceptance shape: near-linear gain with the window over the 50ms
	// geo hop, >= 5x by window=16 on the same schedule.
	if results[1].Speedup < 2.5 {
		t.Errorf("window=4 speedup = %.2fx, want >= 2.5x", results[1].Speedup)
	}
	if results[2].Speedup < 5 {
		t.Errorf("window=16 speedup = %.2fx, want >= 5x", results[2].Speedup)
	}
	t.Log("\n" + E18Table(results).String())
}
