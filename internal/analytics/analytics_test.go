package analytics

import (
	"testing"

	"repro/internal/db"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// fixture holds a shop with completed orders.
type fixture struct {
	env          *sim.Env
	array        *storage.Array
	sales, stock *db.DB
	shop         *workload.Shop
}

// shopWithOrders builds a shop and completes n orders.
func shopWithOrders(t *testing.T, n int) (*sim.Env, *db.DB, *db.DB, *workload.Shop) {
	f := newFixture(t, n)
	return f.env, f.sales, f.stock, f.shop
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	env := sim.NewEnv(1)
	a := storage.NewArray(env, "m", storage.Config{})
	a.CreateVolume("sales", 512)
	a.CreateVolume("stock", 512)
	sv, _ := a.Volume("sales")
	kv, _ := a.Volume("stock")
	var sales, stock *db.DB
	var shop *workload.Shop
	env.Process("setup", func(p *sim.Proc) {
		sales, _ = db.Open(p, "sales", sv, db.Config{})
		stock, _ = db.Open(p, "stock", kv, db.Config{})
		shop = workload.NewShop(env, sales, stock, workload.Config{})
		if err := shop.Run(p, n); err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	return &fixture{env: env, array: a, sales: sales, stock: stock, shop: shop}
}

func TestSalesReportCountsOrders(t *testing.T) {
	env, sales, _, _ := shopWithOrders(t, 25)
	var rep SalesReport
	env.Process("a", func(p *sim.Proc) {
		var err error
		rep, err = Sales(p, sales)
		if err != nil {
			t.Error(err)
		}
	})
	env.Run(0)
	if rep.Orders != 25 {
		t.Fatalf("orders = %d", rep.Orders)
	}
	if rep.FirstOrderAt > rep.LastOrderAt {
		t.Fatalf("time range inverted: %v > %v", rep.FirstOrderAt, rep.LastOrderAt)
	}
	if rep.MaxTxID != 25 {
		t.Fatalf("max txid = %d", rep.MaxTxID)
	}
}

func TestStockReport(t *testing.T) {
	env, _, stock, _ := shopWithOrders(t, 30)
	var rep StockReport
	env.Process("a", func(p *sim.Proc) { rep, _ = Stock(p, stock) })
	env.Run(0)
	if rep.ItemsTouched == 0 {
		t.Fatal("no items touched")
	}
	if rep.MaxTxID != 30 {
		t.Fatalf("max txid = %d", rep.MaxTxID)
	}
}

func TestJoinConsistentImage(t *testing.T) {
	env, sales, stock, _ := shopWithOrders(t, 20)
	var rep JoinReport
	env.Process("a", func(p *sim.Proc) { rep, _ = Join(p, sales, stock) })
	env.Run(0)
	if rep.Unmatched != 0 {
		t.Fatalf("unmatched = %d on consistent image", rep.Unmatched)
	}
	if rep.StockRows == 0 || rep.Matched != rep.StockRows {
		t.Fatalf("rows=%d matched=%d", rep.StockRows, rep.Matched)
	}
}

func TestJoinDetectsOrphans(t *testing.T) {
	// Build an inconsistent pair by hand: stock row from a txn sales never
	// committed — the collapse signature analytics would surface.
	env := sim.NewEnv(1)
	a := storage.NewArray(env, "m", storage.Config{})
	a.CreateVolume("sales", 256)
	a.CreateVolume("stock", 256)
	sv, _ := a.Volume("sales")
	kv, _ := a.Volume("stock")
	var rep JoinReport
	env.Process("t", func(p *sim.Proc) {
		sales, _ := db.Open(p, "sales", sv, db.Config{})
		stock, _ := db.Open(p, "stock", kv, db.Config{})
		tx := stock.BeginWithID(99)
		tx.Put(5, []byte("orphan"))
		tx.Commit(p)
		rep, _ = Join(p, sales, stock)
	})
	env.Run(0)
	if rep.Unmatched != 1 {
		t.Fatalf("unmatched = %d, want 1", rep.Unmatched)
	}
}

func TestSalesReportOnView(t *testing.T) {
	// Analytics must run identically on a snapshot view (the demo's path).
	f := newFixture(t, 10)
	env, sales, a := f.env, f.sales, f.array
	env.Process("a", func(p *sim.Proc) {
		sales.Checkpoint(p)
		snap, err := a.CreateSnapshot("s", "sales")
		if err != nil {
			t.Error(err)
			return
		}
		view, err := db.OpenView(p, "v", snap, db.Config{})
		if err != nil {
			t.Error(err)
			return
		}
		rep, err := Sales(p, view)
		if err != nil {
			t.Error(err)
			return
		}
		if rep.Orders != 10 {
			t.Errorf("view orders = %d", rep.Orders)
		}
	})
	env.Run(0)
}
