// Package analytics is the data-analytics application of the demo's third
// step (§IV-D, Fig. 6): it reads the databases deployed on the backup
// site's snapshot volumes and computes business reports while replication
// continues. It understands the row encoding the e-commerce workload
// writes (internal/workload).
package analytics

import (
	"encoding/binary"
	"time"

	"repro/internal/db"
	"repro/internal/sim"
)

// Source is anything scannable — db.DB and db.View both qualify, so the
// same analytics run against live databases or snapshot views.
type Source interface {
	Scan(p *sim.Proc, fn func(db.Row) bool) error
}

// SalesReport summarizes the order history in a sales database.
type SalesReport struct {
	Orders       int
	FirstOrderAt time.Duration
	LastOrderAt  time.Duration
	MaxTxID      uint64
}

// Sales scans a sales database (rows written by workload.Shop: 16-byte
// values of txid + order timestamp).
func Sales(p *sim.Proc, src Source) (SalesReport, error) {
	var rep SalesReport
	first := true
	err := src.Scan(p, func(r db.Row) bool {
		if len(r.Val) < 16 {
			return true // not an order row
		}
		at := time.Duration(binary.LittleEndian.Uint64(r.Val[8:16]))
		rep.Orders++
		if first || at < rep.FirstOrderAt {
			rep.FirstOrderAt = at
		}
		if first || at > rep.LastOrderAt {
			rep.LastOrderAt = at
		}
		if r.TxID > rep.MaxTxID {
			rep.MaxTxID = r.TxID
		}
		first = false
		return true
	})
	return rep, err
}

// StockReport summarizes the stock database.
type StockReport struct {
	ItemsTouched int
	MaxTxID      uint64
}

// Stock scans a stock database (rows written by workload.Shop).
func Stock(p *sim.Proc, src Source) (StockReport, error) {
	var rep StockReport
	err := src.Scan(p, func(r db.Row) bool {
		rep.ItemsTouched++
		if r.TxID > rep.MaxTxID {
			rep.MaxTxID = r.TxID
		}
		return true
	})
	return rep, err
}

// JoinReport cross-checks the two databases: every stock row's last writer
// should be an order present in sales. On a consistent image Unmatched is
// always zero; on a collapsed image it generally is not — analytics is
// where the demo would *see* collapse.
type JoinReport struct {
	StockRows int
	Matched   int
	Unmatched int
}

// Join verifies stock rows against the sales order set.
func Join(p *sim.Proc, sales interface {
	HasCommitted(txid uint64) bool
}, stock Source) (JoinReport, error) {
	var rep JoinReport
	err := stock.Scan(p, func(r db.Row) bool {
		rep.StockRows++
		if sales.HasCommitted(r.TxID) {
			rep.Matched++
		} else {
			rep.Unmatched++
		}
		return true
	})
	return rep, err
}
