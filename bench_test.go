// Package repro's root benchmarks regenerate every paper artifact (one
// bench per experiment; see DESIGN.md's index). The benchmarks measure the
// harness's wall cost; the scientific results are the simulated-time tables
// each harness prints via cmd/experiments.
package repro

import (
	"testing"
	"time"

	"repro/internal/experiments"
)

// BenchmarkE1_EndToEndPipeline regenerates E1 (Fig. 1 / §IV walkthrough).
func BenchmarkE1_EndToEndPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E1EndToEnd(int64(i+1), 100)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Consistent || !res.FailoverIntact {
			b.Fatalf("pipeline inconsistent: %+v", res)
		}
	}
}

// BenchmarkE2_OperatorAutomation regenerates E2 (Figs. 3-4).
func BenchmarkE2_OperatorAutomation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E2Operator(int64(i+1), []int{2, 8, 32}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_SnapshotGroup regenerates E3 (Fig. 5).
func BenchmarkE3_SnapshotGroup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E3SnapshotGroup(int64(i+1), []int{2, 8}, []float64{0, 0.5, 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_AnalyticsOnSnapshot regenerates E4 (Fig. 6).
func BenchmarkE4_AnalyticsOnSnapshot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E4Analytics(int64(i+1), 40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_SlowdownADCvsSDC regenerates E5 (§I slowdown claim).
func BenchmarkE5_SlowdownADCvsSDC(b *testing.B) {
	rtts := []time.Duration{2 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E5Slowdown(int64(i+1), rtts, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6_CollapseNoCGvsCG regenerates E6 (§I collapse claim).
func BenchmarkE6_CollapseNoCGvsCG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cg, err := experiments.E6Collapse(int64(i*999+1), 6, 300, experiments.ModeADC)
		if err != nil {
			b.Fatal(err)
		}
		if cg.Collapsed != 0 {
			b.Fatalf("consistency group collapsed: %+v", cg)
		}
		if _, err := experiments.E6Collapse(int64(i*999+1), 6, 300, experiments.ModeADCNoCG); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7_RPOvsLink regenerates E7 (RPO exposure).
func BenchmarkE7_RPOvsLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.E7RPO(int64(i+1),
			[]time.Duration{10 * time.Millisecond},
			[]float64{2e5, 1e9}, 300*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8_RecoveryDowntime regenerates E8 (downtime claim).
func BenchmarkE8_RecoveryDowntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E8Recovery(int64(i+1), []int{20, 100, 200}, experiments.ModeADC); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10_FailbackResync regenerates E10 (delta resync after outage).
func BenchmarkE10_FailbackResync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E10Failback(int64(i+1), []int{10, 200})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if !r.ReverseOK {
				b.Fatalf("reverse replication broken: %+v", r)
			}
		}
	}
}

// BenchmarkE9_Ablations regenerates E9 (design-choice ablations).
func BenchmarkE9_Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E9BatchSweep(int64(i+1), []int{1, 16, 256}, 100); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.E9CGScale(int64(i+1), []int{2, 16}, 20); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.E9SkewSweep(int64(i+1), []float64{-1, 1.5}, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12_Interference regenerates E12: a noisy neighbor flooding the
// shared inter-site fabric against a victim tenant, across QoS policies
// (none, weighted classes, dedicated link) plus a mid-run member-link
// failure. This is the fabric scheduler's stress harness.
func BenchmarkE12_Interference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.E12Interference(int64(i+1), 40)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if !r.Consistent {
				b.Fatalf("consistency cut broke: %+v", r)
			}
		}
	}
}

// BenchmarkE12_InterferenceWindowed reruns E12's scheduled scenarios
// (weighted classes, dedicated link, member-link failure) with a per-link
// in-flight window of 4: the QoS isolation shape and every tenant's
// consistency cut must survive pipelined dispatch.
func BenchmarkE12_InterferenceWindowed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.E12InterferenceWindowed(int64(i+1), 40, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if !r.Consistent {
				b.Fatalf("consistency cut broke under window=4: %+v", r)
			}
		}
	}
}

// BenchmarkE13_ShardedThroughput regenerates E13: one write-heavy tenant's
// consistency-group journal sharded across 1/2/4/8 drain lanes over a
// four-link fabric. The acceptance shape is asserted here too: >= 2x drain
// throughput at 4 shards vs 1, and a consistent cross-volume cut after a
// mid-run failover at every shard count.
func BenchmarkE13_ShardedThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.E13ShardedThroughput(int64(i+1), []int{1, 2, 4, 8}, 4000)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if !r.FailoverConsistent {
				b.Fatalf("failover cut broke at %d shards: %+v", r.Shards, r)
			}
		}
		if results[2].Shards != 4 || results[2].Speedup < 2 {
			b.Fatalf("4-shard speedup %.2fx < 2x: %+v", results[2].Speedup, results)
		}
	}
}

// BenchmarkE11_FleetScale regenerates E11: 1,024 tenant namespaces on one
// shared two-site system, mixed OLTP + snapshot analytics + mid-run
// failovers, with per-tenant cross-volume consistency verified. This is the
// fleet-scale stress the sim-kernel fast paths (batch-grained processes,
// fused range I/O, keyed watches, parallel tenant subgraphs) exist for; the
// committed baseline pins its wall cost so kernel regressions block CI.
func BenchmarkE11_FleetScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E11FleetScale(int64(i+1), 1024, 8)
		if err != nil {
			b.Fatal(err)
		}
		if res.Verified != res.Tenants || res.Collapsed != 0 {
			b.Fatalf("fleet inconsistent: %+v", res)
		}
	}
}

// BenchmarkE11_FleetScaleParallel is BenchmarkE11_FleetScale pinned to four
// scheduler workers, so the parallel tenant-subgraph path is exercised (and
// its wall cost pinned) even on hosts where GOMAXPROCS would pick a
// different worker count. The simulated outcome is identical either way
// (golden-trace verified).
func BenchmarkE11_FleetScaleParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E11FleetScaleWorkers(int64(i+1), 1024, 8, 4)
		if err != nil {
			b.Fatal(err)
		}
		if res.Verified != res.Tenants || res.Collapsed != 0 {
			b.Fatalf("fleet inconsistent: %+v", res)
		}
	}
}

// BenchmarkE11_FleetScaleTelemetry is BenchmarkE11_FleetScale with the
// telemetry plane enabled: per-tenant RPO/backlog probes, fabric and
// controller instruments, and lifecycle/epoch span tracing, all live at
// 1,024 tenants. The sample period is kept coarse (5s of virtual time) so
// the bench measures instrumentation overhead on the hot paths rather than
// sample-point volume; the committed baseline requires it to track
// BenchmarkE11_FleetScale within a few percent.
func BenchmarkE11_FleetScaleTelemetry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E11FleetScaleTelemetry(int64(i+1), 1024, 8, 0, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if res.Verified != res.Tenants || res.Collapsed != 0 {
			b.Fatalf("fleet inconsistent: %+v", res)
		}
	}
}

// BenchmarkE16_Observability regenerates E16: a churning fleet (join, live
// reshard, mid-run failovers) with the full telemetry plane on, the
// worst-RPO top-k query, and the probed RPO timelines cross-validated
// against the fleet's own sampler within one sample interval.
func BenchmarkE16_Observability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E16Observability(int64(i+1), 8, 8, 0)
		if err != nil {
			b.Fatal(err)
		}
		if res.ValidatedTenants == 0 || res.Verified != res.Tenants {
			b.Fatalf("observability run inconsistent: %+v", res)
		}
	}
}

// BenchmarkE14_Elasticity regenerates E14: the declarative tenant-lifecycle
// experiment — a steady baseline fleet, then the same fleet with mid-run
// joins (initial copy under OLTP load, one join racing a site failover) and
// a mid-run leave whose decommission must reclaim every volume and journal
// shard. The acceptance shape is asserted here too: every tenant (initial
// and joined) verifies consistent and the leaver leaves zero residue.
func BenchmarkE14_Elasticity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E14Elasticity(int64(i+1), 10, 8)
		if err != nil {
			b.Fatal(err)
		}
		if res.Verified != res.Tenants+res.Joined || res.Collapsed != 0 {
			b.Fatalf("elasticity fleet inconsistent: %+v", res)
		}
		if !res.ReclaimOK || res.ResidueLeaks != 0 {
			b.Fatalf("decommission leaked: %+v", res)
		}
	}
}

// BenchmarkE17_Autopilot regenerates E17: the diurnal SLO experiment run
// twice — statically provisioned (the violation baseline), then under the
// closed-loop autopilot, which must hold every declared RPO target using
// all three effectors (reshard, admission, placement) and hand the
// resources back at night. The acceptance shape is asserted here too.
func BenchmarkE17_Autopilot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E17Autopilot(int64(i+1), 1)
		if err != nil {
			b.Fatal(err)
		}
		if !res.StaticViolates || !res.AutoHolds {
			b.Fatalf("E17 shape broke: staticViolates=%v autoHolds=%v", res.StaticViolates, res.AutoHolds)
		}
		if res.ReshardUps == 0 || res.Derates == 0 || res.Placings == 0 {
			b.Fatalf("an effector never fired: %+v", res)
		}
	}
}

// BenchmarkE18_PipeFill regenerates E18: the same sharded drain schedule
// over one 50ms geo link at per-link in-flight windows 1/4/16. The
// acceptance shape is asserted here too: >= 5x drain throughput at
// window=16 vs stop-and-wait, per-link delivery order proven monotone, and
// an exact ack-order prefix from the mid-window partition/heal/failover run
// at every window.
func BenchmarkE18_PipeFill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.E18PipeFill(int64(i+1), []int{1, 4, 16}, 6144)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if !r.OrderOK || !r.FailoverConsistent {
				b.Fatalf("window=%d: order/cut broke: %+v", r.Window, r)
			}
		}
		if results[2].Window != 16 || results[2].Speedup < 5 {
			b.Fatalf("window=16 speedup %.2fx < 5x: %+v", results[2].Speedup, results)
		}
	}
}

// BenchmarkE15_Reshard regenerates E15: a write-heavy tenant's journal
// resharded 1->4 LIVE (epoch-barrier migration under continuous load and
// bystander OLTP traffic) over a four-link fabric. The acceptance shape is
// asserted here too: >= 2x post-reshard drain throughput, an exact
// epoch-boundary prefix from a failover raced into the migration window,
// and zero migration on a shards-unchanged reconcile.
func BenchmarkE15_Reshard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.E15Reshard(int64(i+1), 4000)
		if err != nil {
			b.Fatal(err)
		}
		if res.SpeedupPostVsPre < 2 {
			b.Fatalf("post/pre speedup %.2fx < 2x: %+v", res.SpeedupPostVsPre, res)
		}
		if !res.FailoverConsistent || !res.RacedWindow {
			b.Fatalf("mid-window failover cut broke: %+v", res)
		}
		if !res.NoopZeroMigration {
			b.Fatalf("unchanged reconcile migrated: %+v", res)
		}
	}
}
