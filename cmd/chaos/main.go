// Command chaos runs seeded randomized fault schedules against the
// deterministic kernel and checks the global invariants after every
// recovery point.
//
// Sweep mode (the default) runs a contiguous range of seeds in parallel:
//
//	go run ./cmd/chaos -seeds 500 -steps short
//
// Every failing seed prints a one-line repro and, unless -shrink=false, the
// minimal failing sub-schedule. Repro mode replays a single seed, prints
// its full deterministic log, and verifies that a second run of the same
// seed is byte-identical:
//
//	go run ./cmd/chaos -steps short -seed 42
//
// Exit status is 1 if any seed fails, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"repro/internal/chaos"
)

func main() {
	var (
		seed    = flag.Int64("seed", -1, "replay a single seed and print its full log (repro mode)")
		seeds   = flag.Int("seeds", 100, "number of seeds to sweep")
		base    = flag.Int64("base", 1, "first seed of the sweep")
		steps   = flag.String("steps", "short", "schedule preset: "+strings.Join(chaos.Steps(), "|"))
		shrink  = flag.Bool("shrink", true, "shrink failing schedules to a minimal failing subset")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel runs (each seed gets its own kernel)")
		logPath = flag.String("log", "", "write failing-seed repro logs to this file (for CI artifacts)")
		plant   = flag.Bool("plant", false, "plant a backup corruption in every schedule (self-test: all seeds must fail and shrink)")
		verbose = flag.Bool("v", false, "print every seed's summary, not just failures")
	)
	flag.Parse()

	if *seed >= 0 {
		os.Exit(repro(*seed, *steps, *plant, *shrink))
	}
	os.Exit(sweep(*base, *seeds, *steps, *plant, *shrink, *workers, *logPath, *verbose))
}

// repro replays one seed, prints the full deterministic log, and checks
// that a second run is byte-identical.
func repro(seed int64, steps string, plant, shrink bool) int {
	res, sr, err := runSeed(seed, steps, plant, shrink)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return 2
	}
	fmt.Print(res.LogText())

	again, _, err := runSeed(seed, steps, plant, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos: replay:", err)
		return 2
	}
	if again.LogText() != res.LogText() {
		fmt.Fprintln(os.Stderr, "chaos: REPLAY DIVERGED — the two runs of this seed differ")
		return 2
	}
	fmt.Printf("replay: byte-identical (%d log lines)\n", len(res.Log))

	if !res.Failed() {
		fmt.Printf("seed %d: clean — %d orders, %d checkpoints, %v sim time\n",
			seed, res.Orders, res.Checks, res.SimTime)
		return 0
	}
	fmt.Printf("seed %d: FAILED — repro: %s\n", seed, res.ReproLine())
	printShrink(os.Stdout, sr)
	return 1
}

type sweepResult struct {
	seed int64
	res  *chaos.Result
	sr   *chaos.ShrinkResult
	err  error
}

// sweep runs seeds [base, base+n) across workers and reports in seed order.
func sweep(base int64, n int, steps string, plant, shrink bool, workers int, logPath string, verbose bool) int {
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int, workers)
	results := make([]sweepResult, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				seed := base + int64(i)
				res, sr, err := runSeed(seed, steps, plant, shrink)
				results[i] = sweepResult{seed: seed, res: res, sr: sr, err: err}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var repros strings.Builder
	failed, orders, checks := 0, int64(0), 0
	for _, r := range results {
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "chaos: seed %d: %v\n", r.seed, r.err)
			failed++
			continue
		}
		orders += r.res.Orders
		checks += r.res.Checks
		if !r.res.Failed() {
			if verbose {
				fmt.Printf("seed %d: clean — %d orders, %d checkpoints, %v sim time\n",
					r.seed, r.res.Orders, r.res.Checks, r.res.SimTime)
			}
			continue
		}
		failed++
		fmt.Printf("seed %d: FAILED — repro: %s\n", r.seed, r.res.ReproLine())
		for _, v := range r.res.Violations {
			fmt.Printf("  violation: %s\n", v)
		}
		if r.res.Err != nil {
			fmt.Printf("  error: %v\n", r.res.Err)
		}
		printShrink(os.Stdout, r.sr)
		repros.WriteString(r.res.ReproLine())
		repros.WriteByte('\n')
		repros.WriteString(r.res.LogText())
		if r.sr != nil {
			repros.WriteString("shrunk to:\n")
			repros.WriteString(r.sr.Minimal.String())
		}
		repros.WriteString("\n")
	}

	if logPath != "" && repros.Len() > 0 {
		if err := os.WriteFile(logPath, []byte(repros.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "chaos: writing repro log:", err)
		} else {
			fmt.Printf("repro logs written to %s\n", logPath)
		}
	}

	fmt.Printf("swept %d seeds (%s): %d failed, %d orders, %d checkpoints\n",
		n, steps, failed, orders, checks)
	if plant {
		// Self-test inversion: with -plant every seed must fail.
		if failed == n {
			fmt.Printf("plant self-test: all %d planted seeds caught\n", n)
			return 0
		}
		fmt.Printf("plant self-test: only %d/%d planted seeds caught\n", failed, n)
		return 1
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// runSeed generates, runs, and (when asked and failing) shrinks one seed.
func runSeed(seed int64, steps string, plant, shrink bool) (*chaos.Result, *chaos.ShrinkResult, error) {
	sch, err := chaos.Generate(seed, steps)
	if err != nil {
		return nil, nil, err
	}
	if plant {
		sch = sch.PlantCorruption()
	}
	res := chaos.Run(sch)
	var sr *chaos.ShrinkResult
	if shrink && res.Failed() {
		s := chaos.Shrink(sch, 200)
		sr = &s
	}
	return res, sr, nil
}

func printShrink(w *os.File, sr *chaos.ShrinkResult) {
	if sr == nil {
		return
	}
	for _, line := range sr.Trace {
		fmt.Fprintf(w, "  shrink: %s\n", line)
	}
	for _, f := range sr.Minimal.Faults {
		fmt.Fprintf(w, "  minimal fault: %s\n", f)
	}
}
