// Command benchcheck is the CI bench-regression gate: it parses `go test
// -bench` output from stdin, compares each harness against the committed
// BENCH_baseline.json, and exits non-zero when any harness's ns/op regressed
// past the threshold. Benchmarks not in the baseline are reported as "new"
// (allowed — commit a fresh baseline to start tracking them); alloc and
// bytes-per-op regressions only warn, since wall cost is the gate.
//
// Runs repeated with -count are collapsed to each benchmark's MINIMUM
// ns/op — the standard noise-robust statistic for a shared CI box — and
// `make baseline` records minima the same way, so the comparison is
// like-for-like.
//
// Usage (what `make bench-check` runs):
//
//	go test -run '^$' -bench . -benchtime 3x -benchmem -count 3 . | go run ./cmd/benchcheck -baseline BENCH_baseline.json
//
// With -update the tool REWRITES the baseline from the run on stdin instead
// of comparing against it (what `make baseline` runs) — same parser, same
// min-over-count aggregation, so the recorded numbers are exactly what a
// later bench-check will compare like-for-like.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one harness's recorded cost — the schema of BENCH_baseline.json
// (make baseline writes it, this tool reads it).
type Entry struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Verdict classifies one benchmark against the baseline.
type Verdict struct {
	Name     string `json:"name"`
	Status   string `json:"status"` // "ok", "regressed", "alloc-warn", "new", "missing"
	Detail   string `json:"detail"`
	Blocking bool   `json:"blocking"`
}

// Report is the machine-readable result of one gate run — what -json writes,
// so CI can archive the comparison as a build artifact and dashboards can
// track the measured costs without re-parsing console output.
type Report struct {
	Baseline string    `json:"baseline"`
	Pass     bool      `json:"pass"`
	Summary  string    `json:"summary"`
	Verdicts []Verdict `json:"verdicts"`
	Current  []Entry   `json:"current"`
}

// writeReport renders the report as indented JSON at path.
func writeReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// cpuSuffix strips the -GOMAXPROCS suffix go test appends to bench names,
// so runs from machines with different core counts compare.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput extracts benchmark entries from `go test -bench` output.
// With -benchmem each line reads:
//
//	BenchmarkName-N  iters  ns/op-value ns/op  B-value B/op  allocs-value allocs/op
func parseBenchOutput(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		e := Entry{Name: cpuSuffix.ReplaceAllString(f[0], "")}
		var err error
		if e.Iters, err = strconv.ParseInt(f[1], 10, 64); err != nil {
			continue
		}
		// Units follow their values; scan pairwise so missing -benchmem
		// columns (or extra custom metrics) don't break parsing.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		if e.NsPerOp == 0 {
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return aggregateMin(out), nil
}

// aggregateMin collapses repeated measurements of one benchmark (go test
// -count N) to the run with the minimum ns/op, preserving first-seen order.
func aggregateMin(entries []Entry) []Entry {
	best := make(map[string]int, len(entries))
	var out []Entry
	for _, e := range entries {
		i, ok := best[e.Name]
		if !ok {
			best[e.Name] = len(out)
			out = append(out, e)
			continue
		}
		if e.NsPerOp < out[i].NsPerOp {
			out[i] = e
		}
	}
	return out
}

// writeBaseline renders entries in the committed baseline's stable format:
// one object per line, integer-rounded values, first-seen order — so
// regenerating after an intentional cost move yields a reviewable diff.
func writeBaseline(w io.Writer, entries []Entry) error {
	var b strings.Builder
	b.WriteString("[\n")
	for i, e := range entries {
		fmt.Fprintf(&b, "  {\"name\": %q, \"iters\": %d, \"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d}",
			e.Name, e.Iters, int64(e.NsPerOp), int64(e.BytesPerOp), int64(e.AllocsPerOp))
		if i < len(entries)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// updateBaseline writes the parsed run to path and returns the recorded
// entries.
func updateBaseline(path string, entries []Entry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeBaseline(f, entries); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadBaseline(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Entry
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// ratio formats a relative change, e.g. +31.2% or -8.4%.
func ratio(cur, base float64) string {
	return fmt.Sprintf("%+.1f%%", (cur/base-1)*100)
}

// deltaSummary condenses the whole run into one line — printed on pass as
// well as fail, so a green gate still reports how far the needle moved:
// median and worst ns/op delta over the compared benchmarks, plus any
// new/missing ones.
func deltaSummary(baseline, current []Entry) string {
	base := make(map[string]Entry, len(baseline))
	for _, e := range baseline {
		base[e.Name] = e
	}
	var deltas []float64
	var worst float64
	worstName := ""
	newCount := 0
	seen := make(map[string]bool, len(current))
	for _, cur := range current {
		seen[cur.Name] = true
		b, ok := base[cur.Name]
		if !ok || b.NsPerOp <= 0 {
			newCount++
			continue
		}
		d := cur.NsPerOp/b.NsPerOp - 1
		deltas = append(deltas, d)
		if worstName == "" || d > worst {
			worst, worstName = d, cur.Name
		}
	}
	missing := 0
	for _, b := range baseline {
		if !seen[b.Name] {
			missing++
		}
	}
	if len(deltas) == 0 {
		return fmt.Sprintf("no baseline overlap (%d new, %d missing)", newCount, missing)
	}
	sort.Float64s(deltas)
	median := deltas[len(deltas)/2]
	if len(deltas)%2 == 0 {
		median = (deltas[len(deltas)/2-1] + deltas[len(deltas)/2]) / 2
	}
	s := fmt.Sprintf("%d compared, ns/op median %+.1f%%, worst %+.1f%% (%s)",
		len(deltas), median*100, worst*100, worstName)
	if newCount > 0 {
		s += fmt.Sprintf(", %d new", newCount)
	}
	if missing > 0 {
		s += fmt.Sprintf(", %d missing", missing)
	}
	return s
}

// compare classifies every current benchmark against the baseline. ns/op
// regressions beyond nsThreshold block; alloc/bytes regressions beyond
// allocThreshold warn; baseline entries absent from the run warn as
// "missing" (a renamed or deleted harness needs a fresh baseline).
func compare(baseline, current []Entry, nsThreshold, allocThreshold float64) []Verdict {
	base := make(map[string]Entry, len(baseline))
	for _, e := range baseline {
		base[e.Name] = e
	}
	seen := make(map[string]bool, len(current))
	var out []Verdict
	for _, cur := range current {
		seen[cur.Name] = true
		b, ok := base[cur.Name]
		if !ok {
			out = append(out, Verdict{Name: cur.Name, Status: "new",
				Detail: fmt.Sprintf("%.0f ns/op (not in baseline; `make baseline` to track)", cur.NsPerOp)})
			continue
		}
		if b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*(1+nsThreshold) {
			out = append(out, Verdict{Name: cur.Name, Status: "regressed", Blocking: true,
				Detail: fmt.Sprintf("ns/op %.0f -> %.0f (%s, threshold +%.0f%%)",
					b.NsPerOp, cur.NsPerOp, ratio(cur.NsPerOp, b.NsPerOp), nsThreshold*100)})
			continue
		}
		if b.AllocsPerOp > 0 && cur.AllocsPerOp > b.AllocsPerOp*(1+allocThreshold) {
			out = append(out, Verdict{Name: cur.Name, Status: "alloc-warn",
				Detail: fmt.Sprintf("allocs/op %.0f -> %.0f (%s) — warning only",
					b.AllocsPerOp, cur.AllocsPerOp, ratio(cur.AllocsPerOp, b.AllocsPerOp))})
			continue
		}
		if b.BytesPerOp > 0 && cur.BytesPerOp > b.BytesPerOp*(1+allocThreshold) {
			out = append(out, Verdict{Name: cur.Name, Status: "alloc-warn",
				Detail: fmt.Sprintf("B/op %.0f -> %.0f (%s) — warning only",
					b.BytesPerOp, cur.BytesPerOp, ratio(cur.BytesPerOp, b.BytesPerOp))})
			continue
		}
		out = append(out, Verdict{Name: cur.Name, Status: "ok",
			Detail: fmt.Sprintf("ns/op %.0f -> %.0f (%s)", b.NsPerOp, cur.NsPerOp, ratio(cur.NsPerOp, b.NsPerOp))})
	}
	for _, b := range baseline {
		if !seen[b.Name] {
			out = append(out, Verdict{Name: b.Name, Status: "missing",
				Detail: "in baseline but absent from this run"})
		}
	}
	return out
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline to compare against")
	nsThreshold := flag.Float64("threshold", 0.25, "blocking ns/op regression threshold (fraction)")
	allocThreshold := flag.Float64("alloc-threshold", 0.25, "warn-only allocs/op regression threshold (fraction)")
	update := flag.Bool("update", false, "rewrite the baseline from the bench run on stdin instead of comparing")
	jsonPath := flag.String("json", "", "also write the comparison as a JSON report to this path (CI artifact)")
	flag.Parse()

	current, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: reading bench output: %v\n", err)
		os.Exit(2)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark lines on stdin (pipe `go test -bench` output in)")
		os.Exit(2)
	}
	if *update {
		if err := updateBaseline(*baselinePath, current); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: updating %s: %v\n", *baselinePath, err)
			os.Exit(2)
		}
		fmt.Printf("benchcheck: wrote %s (%d benchmarks, min ns/op over repeated runs)\n", *baselinePath, len(current))
		return
	}
	baseline, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	verdicts := compare(baseline, current, *nsThreshold, *allocThreshold)
	blocking := 0
	for _, v := range verdicts {
		fmt.Printf("%-12s %-36s %s\n", v.Status, v.Name, v.Detail)
		if v.Blocking {
			blocking++
		}
	}
	summary := deltaSummary(baseline, current)
	if *jsonPath != "" {
		rep := Report{Baseline: *baselinePath, Pass: blocking == 0,
			Summary: summary, Verdicts: verdicts, Current: current}
		if err := writeReport(*jsonPath, rep); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: writing %s: %v\n", *jsonPath, err)
			os.Exit(2)
		}
	}
	if blocking > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: FAIL — %d benchmark(s) regressed past the ns/op threshold; %s\n",
			blocking, summary)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: PASS vs %s — %s\n", *baselinePath, summary)
}
