package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor
BenchmarkE1_EndToEndPipeline-96          3          11000000 ns/op         5242880 B/op      12345 allocs/op
BenchmarkE2_OperatorAutomation-96        3           1300000 ns/op          100000 B/op       2000 allocs/op
BenchmarkE13_ShardedThroughput-96        3         230000000 ns/op        90000000 B/op     900000 allocs/op
PASS
ok      repro   1.234s
`

func TestParseBenchOutputStripsCPUSuffixAndReadsBenchmem(t *testing.T) {
	entries, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	e := entries[0]
	if e.Name != "BenchmarkE1_EndToEndPipeline" {
		t.Errorf("name = %q (cpu suffix not stripped?)", e.Name)
	}
	if e.Iters != 3 || e.NsPerOp != 11000000 || e.BytesPerOp != 5242880 || e.AllocsPerOp != 12345 {
		t.Errorf("entry = %+v", e)
	}
}

func TestParseBenchOutputTakesMinAcrossCounts(t *testing.T) {
	in := "BenchmarkX-8  3  3000 ns/op\nBenchmarkX-8  3  1000 ns/op\nBenchmarkX-8  3  2000 ns/op\n"
	entries, err := parseBenchOutput(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].NsPerOp != 1000 {
		t.Fatalf("entries = %+v, want single min-ns entry", entries)
	}
}

func TestParseBenchOutputWithoutBenchmemColumns(t *testing.T) {
	entries, err := parseBenchOutput(strings.NewReader("BenchmarkX-8  5  1000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].NsPerOp != 1000 || entries[0].AllocsPerOp != 0 {
		t.Fatalf("entries = %+v", entries)
	}
}

func verdictFor(t *testing.T, vs []Verdict, name string) Verdict {
	t.Helper()
	for _, v := range vs {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("no verdict for %s in %+v", name, vs)
	return Verdict{}
}

func TestCompareClassifiesRegressionsNewAndMissing(t *testing.T) {
	baseline := []Entry{
		{Name: "BenchA", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchB", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchC", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchGone", NsPerOp: 1000},
	}
	baseline = append(baseline, Entry{Name: "BenchD", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 1000})
	current := []Entry{
		{Name: "BenchA", NsPerOp: 1200, AllocsPerOp: 100},                   // +20% — within 25%
		{Name: "BenchB", NsPerOp: 1300, AllocsPerOp: 100},                   // +30% — blocks
		{Name: "BenchC", NsPerOp: 1000, AllocsPerOp: 200},                   // alloc doubled — warns only
		{Name: "BenchNew", NsPerOp: 500, AllocsPerOp: 100},                  // not in baseline — allowed
		{Name: "BenchD", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 3000}, // B/op tripled — warns only
	}
	vs := compare(baseline, current, 0.25, 0.25)

	if v := verdictFor(t, vs, "BenchA"); v.Status != "ok" || v.Blocking {
		t.Errorf("BenchA = %+v", v)
	}
	if v := verdictFor(t, vs, "BenchB"); v.Status != "regressed" || !v.Blocking {
		t.Errorf("BenchB = %+v", v)
	}
	if v := verdictFor(t, vs, "BenchC"); v.Status != "alloc-warn" || v.Blocking {
		t.Errorf("BenchC = %+v (alloc regressions must warn, not fail)", v)
	}
	if v := verdictFor(t, vs, "BenchNew"); v.Status != "new" || v.Blocking {
		t.Errorf("BenchNew = %+v (new benches are allowed)", v)
	}
	if v := verdictFor(t, vs, "BenchD"); v.Status != "alloc-warn" || v.Blocking {
		t.Errorf("BenchD = %+v (B/op regressions must warn, not fail)", v)
	}
	if v := verdictFor(t, vs, "BenchGone"); v.Status != "missing" || v.Blocking {
		t.Errorf("BenchGone = %+v", v)
	}
}

func TestCompareBoundaryExactlyAtThresholdPasses(t *testing.T) {
	baseline := []Entry{{Name: "B", NsPerOp: 1000}}
	// Exactly +25% is NOT a regression (strictly-greater check).
	vs := compare(baseline, []Entry{{Name: "B", NsPerOp: 1250}}, 0.25, 0.25)
	if v := verdictFor(t, vs, "B"); v.Blocking {
		t.Errorf("exactly-at-threshold blocked: %+v", v)
	}
	vs = compare(baseline, []Entry{{Name: "B", NsPerOp: 1251}}, 0.25, 0.25)
	if v := verdictFor(t, vs, "B"); !v.Blocking {
		t.Errorf("past-threshold not blocked: %+v", v)
	}
}

func TestCompareToleratesBaselineWithoutAllocs(t *testing.T) {
	// Pre-benchmem baselines have zero alloc fields; they must not warn.
	baseline := []Entry{{Name: "B", NsPerOp: 1000}}
	vs := compare(baseline, []Entry{{Name: "B", NsPerOp: 1000, AllocsPerOp: 999}}, 0.25, 0.25)
	if v := verdictFor(t, vs, "B"); v.Status != "ok" {
		t.Errorf("verdict = %+v", v)
	}
}

func TestDeltaSummaryReportsMedianWorstNewMissing(t *testing.T) {
	baseline := []Entry{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 2000},
		{Name: "C", NsPerOp: 4000},
		{Name: "Gone", NsPerOp: 100},
	}
	current := []Entry{
		{Name: "A", NsPerOp: 1100}, // +10%
		{Name: "B", NsPerOp: 1800}, // -10%
		{Name: "C", NsPerOp: 6000}, // +50% — worst
		{Name: "Fresh", NsPerOp: 1},
	}
	s := deltaSummary(baseline, current)
	for _, want := range []string{
		"3 compared", "median +10.0%", "worst +50.0% (C)", "1 new", "1 missing",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestDeltaSummaryNoOverlap(t *testing.T) {
	s := deltaSummary([]Entry{{Name: "Old", NsPerOp: 1}}, []Entry{{Name: "New", NsPerOp: 1}})
	if !strings.Contains(s, "no baseline overlap") || !strings.Contains(s, "1 new") || !strings.Contains(s, "1 missing") {
		t.Errorf("summary = %q", s)
	}
}

// TestUpdateBaselineRoundTrips pins the -update mode: the written file is
// the committed baseline format (stable line-per-entry layout, integer
// values) and loads back to exactly what the parser aggregated — so a
// baseline regenerated by `make baseline` compares like-for-like with the
// run that produced it.
func TestUpdateBaselineRoundTrips(t *testing.T) {
	out := "BenchmarkE1_EndToEndPipeline-8   3   8372413 ns/op   120000 B/op   2200 allocs/op\n" +
		"BenchmarkE15_Reshard-8           3  50123456 ns/op  9000000 B/op  81000 allocs/op\n" +
		"BenchmarkE1_EndToEndPipeline-8   3   7260607 ns/op   118000 B/op   2100 allocs/op\n"
	entries, err := parseBenchOutput(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	if err := updateBaseline(path, entries); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(loaded))
	}
	if loaded[0].Name != "BenchmarkE1_EndToEndPipeline" || loaded[0].NsPerOp != 7260607 {
		t.Fatalf("entry 0 = %+v (min-over-count not recorded)", loaded[0])
	}
	if loaded[1].Name != "BenchmarkE15_Reshard" || loaded[1].AllocsPerOp != 81000 {
		t.Fatalf("entry 1 = %+v", loaded[1])
	}
	// The file itself keeps the reviewable one-line-per-entry shape.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 || lines[0] != "[" || lines[len(lines)-1] != "]" {
		t.Fatalf("baseline layout changed:\n%s", data)
	}
	// A comparison against the just-written baseline is all-ok.
	for _, v := range compare(loaded, entries, 0.25, 0.25) {
		if v.Status != "ok" {
			t.Fatalf("self-comparison verdict %+v", v)
		}
	}
}

// TestUpdateBaselineFractionalNsRounds covers sub-nanosecond benches (the
// parser keeps floats; the committed format records integers).
func TestUpdateBaselineFractionalNsRounds(t *testing.T) {
	entries := []Entry{{Name: "BenchmarkTiny", Iters: 1000000, NsPerOp: 12.75, BytesPerOp: 3.5, AllocsPerOp: 0.5}}
	path := filepath.Join(t.TempDir(), "b.json")
	if err := updateBaseline(path, entries); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded[0].NsPerOp != 12 || loaded[0].BytesPerOp != 3 {
		t.Fatalf("rounding changed: %+v", loaded[0])
	}
}
