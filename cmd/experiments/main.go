// Command experiments regenerates every table/figure of the reproduction
// (E1-E18; DESIGN.md carries the experiment index). Select a subset with
// -run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment IDs (e1,e2,...,e18) or 'all'")
	seed := flag.Int64("seed", 1, "base simulation seed")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast pass")
	kernelStats := flag.Bool("kernelstats", false, "print kernel scheduler counters for every simulated environment")
	telemetryOut := flag.String("telemetry", "", "write E16's telemetry export (Chrome trace-event JSON) to this path")
	decisionsOut := flag.String("decisions", "", "write E17's autopilot decision log to this path")
	flag.Parse()

	experiments.CollectKernelStats(*kernelStats)

	want := map[string]bool{}
	for _, id := range strings.Split(strings.ToLower(*run), ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	sel := func(id string) bool { return all || want[id] }

	orders := 200
	trials := 25
	if *quick {
		orders, trials = 60, 8
	}

	if sel("e1") {
		res, err := experiments.E1EndToEnd(*seed, orders)
		if err != nil {
			log.Fatalf("E1: %v", err)
		}
		fmt.Println(experiments.E1Table(res))
	}
	if sel("e2") {
		res, err := experiments.E2Operator(*seed, []int{2, 8, 32, 128})
		if err != nil {
			log.Fatalf("E2: %v", err)
		}
		fmt.Println(experiments.E2Table(res))
	}
	if sel("e3") {
		res, err := experiments.E3SnapshotGroup(*seed, []int{2, 4, 8}, []float64{0, 0.1, 0.5, 1.0})
		if err != nil {
			log.Fatalf("E3: %v", err)
		}
		fmt.Println(experiments.E3Table(res))
	}
	if sel("e4") {
		res, err := experiments.E4Analytics(*seed, orders)
		if err != nil {
			log.Fatalf("E4: %v", err)
		}
		fmt.Println(experiments.E4Table(res))
	}
	if sel("e5") {
		rtts := []time.Duration{
			200 * time.Microsecond, time.Millisecond, 2 * time.Millisecond,
			10 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond,
		}
		res, err := experiments.E5Slowdown(*seed, rtts, orders)
		if err != nil {
			log.Fatalf("E5: %v", err)
		}
		fmt.Println(experiments.E5Table(res))
	}
	if sel("e6") {
		cg, err := experiments.E6Collapse(*seed*1000, trials, 300, experiments.ModeADC)
		if err != nil {
			log.Fatalf("E6: %v", err)
		}
		noCG, err := experiments.E6Collapse(*seed*1000, trials, 300, experiments.ModeADCNoCG)
		if err != nil {
			log.Fatalf("E6: %v", err)
		}
		fmt.Println(experiments.E6Table([]experiments.CollapseResult{cg, noCG}))
	}
	if sel("e7") {
		rtts := []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 40 * time.Millisecond}
		bws := []float64{2e5, 1e6, 1e7, 1e9}
		res, err := experiments.E7RPO(*seed, rtts, bws, 400*time.Millisecond)
		if err != nil {
			log.Fatalf("E7: %v", err)
		}
		fmt.Println(experiments.E7Table(res))
	}
	if sel("e8") {
		cg, err := experiments.E8Recovery(*seed, []int{20, 50, 100, 200, 400}, experiments.ModeADC)
		if err != nil {
			log.Fatalf("E8: %v", err)
		}
		noCG, err := experiments.E8Recovery(*seed, []int{200, 220, 240, 260}, experiments.ModeADCNoCG)
		if err != nil {
			log.Fatalf("E8: %v", err)
		}
		fmt.Println(experiments.E8Table(append(cg, noCG...)))
	}
	if sel("e10") {
		res, err := experiments.E10Failback(*seed, []int{10, 50, 200, 800})
		if err != nil {
			log.Fatalf("E10: %v", err)
		}
		fmt.Println(experiments.E10Table(res))
	}
	if sel("e11") {
		tenants := 100
		if *quick {
			tenants = 24
		}
		res, err := experiments.E11FleetScale(*seed, tenants, 8)
		if err != nil {
			log.Fatalf("E11: %v", err)
		}
		fmt.Println(experiments.E11Table(res))
	}
	if sel("e12") {
		e12Orders := 40
		if *quick {
			e12Orders = 20
		}
		res, err := experiments.E12Interference(*seed, e12Orders)
		if err != nil {
			log.Fatalf("E12: %v", err)
		}
		fmt.Println(experiments.E12Table(res))
	}
	if sel("e13") {
		e13Writes := 4000
		if *quick {
			e13Writes = 1500
		}
		res, err := experiments.E13ShardedThroughput(*seed, []int{1, 2, 4, 8}, e13Writes)
		if err != nil {
			log.Fatalf("E13: %v", err)
		}
		fmt.Println(experiments.E13Table(res))
	}
	if sel("e14") {
		tenants, e14Orders := 24, 10
		if *quick {
			tenants, e14Orders = 10, 8
		}
		res, err := experiments.E14Elasticity(*seed, tenants, e14Orders)
		if err != nil {
			log.Fatalf("E14: %v", err)
		}
		fmt.Println(experiments.E14Table(res))
	}
	if sel("e15") {
		e15Writes := 6000
		if *quick {
			e15Writes = 2000
		}
		res, err := experiments.E15Reshard(*seed, e15Writes)
		if err != nil {
			log.Fatalf("E15: %v", err)
		}
		fmt.Println(experiments.E15Table(res))
	}
	if sel("e16") {
		tenants, e16Orders := 16, 12
		if *quick {
			tenants, e16Orders = 8, 8
		}
		res, err := experiments.E16Observability(*seed, tenants, e16Orders, 1)
		if err != nil {
			log.Fatalf("E16: %v", err)
		}
		fmt.Println(experiments.E16Table(res))
		if *telemetryOut != "" {
			data, err := res.Registry.ExportJSON()
			if err != nil {
				log.Fatalf("E16: telemetry export: %v", err)
			}
			if err := os.WriteFile(*telemetryOut, data, 0o644); err != nil {
				log.Fatalf("E16: telemetry export: %v", err)
			}
			fmt.Printf("telemetry export written to %s (%d bytes; open in Perfetto / chrome://tracing)\n\n",
				*telemetryOut, len(data))
		}
	}
	if sel("e17") {
		res, err := experiments.E17Autopilot(*seed, 1)
		if err != nil {
			log.Fatalf("E17: %v", err)
		}
		fmt.Println(experiments.E17Table(res))
		if !res.StaticViolates || !res.AutoHolds {
			log.Fatalf("E17: acceptance shape broke: staticViolates=%v autoHolds=%v",
				res.StaticViolates, res.AutoHolds)
		}
		if *decisionsOut != "" {
			if err := os.WriteFile(*decisionsOut, []byte(res.DecisionLog), 0o644); err != nil {
				log.Fatalf("E17: decision log: %v", err)
			}
			fmt.Printf("autopilot decision log written to %s (%d decisions)\n\n",
				*decisionsOut, len(res.Decisions))
		}
	}
	if sel("e18") {
		e18Writes := 6144
		if *quick {
			e18Writes = 2048
		}
		res, err := experiments.E18PipeFill(*seed, []int{1, 4, 16}, e18Writes)
		if err != nil {
			log.Fatalf("E18: %v", err)
		}
		fmt.Println(experiments.E18Table(res))
	}
	if sel("e9") {
		batch, err := experiments.E9BatchSweep(*seed, []int{1, 4, 16, 64, 256}, orders)
		if err != nil {
			log.Fatalf("E9a: %v", err)
		}
		fmt.Println(experiments.E9BatchTable(batch))
		cgScale, err := experiments.E9CGScale(*seed, []int{2, 4, 8, 16, 32}, 30)
		if err != nil {
			log.Fatalf("E9b: %v", err)
		}
		fmt.Println(experiments.E9CGScaleTable(cgScale))
		skew, err := experiments.E9SkewSweep(*seed, []float64{-1, 1.1, 1.5, 2.5}, orders)
		if err != nil {
			log.Fatalf("E9c: %v", err)
		}
		fmt.Println(experiments.E9SkewTable(skew))
	}
	if *kernelStats {
		fmt.Println(experiments.KernelStatsTable())
	}
}
