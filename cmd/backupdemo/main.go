// Command backupdemo replays the paper's on-stage demonstration (§IV) as a
// console program: a split main-site / backup-site view (Fig. 2), the
// backup-configuration step (Fig. 3), the persistent volumes appearing at
// the backup site (Fig. 4), snapshot development (Fig. 5), and data
// analytics on the snapshot volumes (Fig. 6). A transaction ticker plays
// the role of the demo's transaction window.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 42, "simulation seed")
	orders := flag.Int("orders", 120, "orders the transaction window plays")
	disaster := flag.Bool("disaster", false, "append a disaster drill: failover, production at backup, failback")
	flag.Parse()

	sys := core.NewSystem(core.Config{Seed: *seed})
	sys.Env.Process("demo", func(p *sim.Proc) {
		runDemo(p, sys, *orders)
		if *disaster {
			runDisaster(p, sys)
		}
	})
	sys.Env.Run(2 * time.Hour)
}

// runDisaster extends the demo past the paper: lose the main site, recover
// at the backup, and fail back when the main site returns.
func runDisaster(p *sim.Proc, sys *core.System) {
	banner("Encore — disaster drill (what the consistency groups were for)")
	sys.Links.Partition()
	fmt.Println("  DISASTER: inter-site link severed; main site presumed lost")
	fo, err := sys.Failover(p, "shop")
	if err != nil {
		log.Fatalf("failover: %v", err)
	}
	fmt.Printf("  failover complete in %v: databases recovered at the backup site\n", fo.RecoveryTime)

	tx := fo.Sales.BeginWithID(900001)
	tx.Put(900001, []byte("backup-era order"))
	if err := tx.Commit(p); err != nil {
		log.Fatalf("backup-era commit: %v", err)
	}
	fmt.Println("  business resumed at the backup site (one order committed)")

	sys.Links.Heal()
	fmt.Println("  main site restored; links healed")
	fb, err := sys.Failback(p)
	if err != nil {
		log.Fatalf("failback: %v", err)
	}
	fmt.Printf("  failback: delta resync moved %d blocks (full copy would move %d) in %v\n",
		fb.DeltaBlocks, fb.FullBlocks, fb.ResyncTime)
	fmt.Println("  reverse replication running: the main site shadows the backup until switchback")
	for _, g := range fb.Reverse {
		g.CatchUp(p)
		g.Stop()
	}
}

func banner(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", 72))
	fmt.Printf("  %s\n", title)
	fmt.Println(strings.Repeat("=", 72))
}

// splitView renders the Fig. 2 screen: main site on the left, backup on
// the right.
func splitView(p *sim.Proc, sys *core.System, namespace string) {
	left := pvLines(p, sys.Main.API, namespace)
	right := pvLines(p, sys.Backup.API, namespace)
	for len(left) < len(right) {
		left = append(left, "")
	}
	for len(right) < len(left) {
		right = append(right, "")
	}
	fmt.Printf("  %-34s | %-34s\n", "MAIN SITE", "BACKUP SITE")
	fmt.Printf("  %-34s-+-%-34s\n", strings.Repeat("-", 34), strings.Repeat("-", 34))
	for i := range left {
		fmt.Printf("  %-34s | %-34s\n", left[i], right[i])
	}
}

func pvLines(p *sim.Proc, api *platform.APIServer, namespace string) []string {
	var out []string
	for _, obj := range api.List(p, platform.KindPVC, namespace) {
		c := obj.(*platform.PersistentVolumeClaim)
		out = append(out, fmt.Sprintf("pvc %s/%s [%s]", c.Namespace, c.Name, c.Status.Phase))
	}
	if len(out) == 0 {
		out = append(out, "(no persistent volumes)")
	}
	return out
}

func runDemo(p *sim.Proc, sys *core.System, orders int) {
	banner("Demonstration system: two sites, two arrays, two container platforms")
	fmt.Printf("  inter-site RTT %v, storage %s / %s\n",
		sys.Links.RTT(), sys.Main.Array.Name(), sys.Backup.Array.Name())

	bp, err := sys.DeployBusinessProcess(p, "shop")
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	fmt.Println("\n  deployed namespace 'shop': transactional app + sales DB + stock DB")
	splitView(p, sys, "shop")

	// Transaction window: continuous business in the background.
	fmt.Printf("\n  [transaction window] starting continuous order processing (%d orders)\n", orders)
	txnDone := sys.Env.NewEvent()
	sys.Env.Process("transaction-window", func(tp *sim.Proc) {
		defer txnDone.Trigger()
		if err := bp.Shop.Run(tp, orders); err != nil {
			log.Fatalf("orders: %v", err)
		}
	})

	banner("Step 1 — backup configuration (Fig. 3): tag the namespace")
	fmt.Printf("  $ oc label namespace shop backup=%s\n", "ConsistentCopyToCloud")
	if err := sys.EnableBackup(p, "shop"); err != nil {
		log.Fatalf("enable backup: %v", err)
	}
	fmt.Println("  namespace operator: discovered PVCs, created ReplicationGroup CR")
	fmt.Println("  replication plugin: journal + consistency group configured, ADC running")
	fmt.Println("\n  persistent volumes after tagging (Fig. 4) — note the backup side:")
	splitView(p, sys, "shop")

	p.Wait(txnDone)
	fmt.Printf("\n  [transaction window] %d orders completed, mean latency %v (RTT %v — no slowdown)\n",
		bp.Shop.Completed.Value(), bp.Shop.Latency.Mean(), sys.Links.RTT())
	sys.CatchUp(p, "shop")
	fmt.Printf("  replication caught up: backlog %d, RPO %v\n", sys.Backlog("shop"), sys.RPO("shop"))

	banner("Step 2 — snapshot development (Fig. 5): group snapshot at the backup site")
	group, err := sys.SnapshotBackup(p, "shop", "demo")
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	if sys.Cfg.FeatureGates.VolumeGroupSnapshot {
		fmt.Println("  created through the VolumeGroupSnapshot CSI API (alpha gate ON)")
	} else {
		fmt.Println("  CSI VolumeGroupSnapshot is alpha and unsupported by the plugin (§II):")
		fmt.Println("  operated the external storage system directly")
	}
	for _, s := range group.Snapshots() {
		fmt.Printf("  snapshot %-28s of volume %-20s at %v\n", s.ID(), s.Parent().ID(), s.TakenAt())
	}

	banner("Step 3 — data analytics (Fig. 6): read the snapshot volumes")
	salesView, stockView, err := sys.AnalyticsDBs(p, "shop", group)
	if err != nil {
		log.Fatalf("analytics: %v", err)
	}
	sales, _ := analytics.Sales(p, salesView)
	stock, _ := analytics.Stock(p, stockView)
	join, _ := analytics.Join(p, salesView, stockView)
	fmt.Printf("  orders in backup image:      %d\n", sales.Orders)
	fmt.Printf("  stock items touched:         %d\n", stock.ItemsTouched)
	fmt.Printf("  stock rows matching orders:  %d/%d (%d unmatched)\n", join.Matched, join.StockRows, join.Unmatched)
	if join.Unmatched == 0 {
		fmt.Println("  the backup data is consistent: no collapsed transactions")
	}

	banner("Demonstration complete")
	fmt.Printf("  slowdown eliminated (ADC), downtime eliminated (consistency groups + snapshots)\n")
	fmt.Printf("  virtual time elapsed: %v\n", p.Now())
}
