// Analytics on backup data: the demo's third step (§IV-D, Fig. 6). While
// orders keep flowing at the main site, a data analyst opens the databases
// on backup-site snapshot volumes and runs reports — without touching the
// main site or disturbing replication.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	sys := core.NewSystem(core.Config{Seed: 11})

	sys.Env.Process("analytics-demo", func(p *sim.Proc) {
		bp, err := sys.DeployBusinessProcess(p, "shop")
		if err != nil {
			log.Fatalf("deploy: %v", err)
		}
		if err := sys.EnableBackup(p, "shop"); err != nil {
			log.Fatalf("backup: %v", err)
		}

		// Morning business.
		if err := bp.Shop.Run(p, 60); err != nil {
			log.Fatalf("orders: %v", err)
		}
		sys.CatchUp(p, "shop")

		// The analyst cuts a snapshot group at the backup site...
		group, err := sys.SnapshotBackup(p, "shop", "morning")
		if err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		fmt.Println("snapshot group 'morning' created at the backup site")

		// ...while afternoon business continues at the main site.
		afternoon := sys.Env.NewEvent()
		sys.Env.Process("afternoon-orders", func(op *sim.Proc) {
			defer afternoon.Trigger()
			if err := bp.Shop.Run(op, 60); err != nil {
				log.Fatalf("afternoon orders: %v", err)
			}
		})

		// The analytics application reads the frozen morning image.
		salesView, stockView, err := sys.AnalyticsDBs(p, "shop", group)
		if err != nil {
			log.Fatalf("open views: %v", err)
		}
		sales, err := analytics.Sales(p, salesView)
		if err != nil {
			log.Fatalf("sales report: %v", err)
		}
		stock, err := analytics.Stock(p, stockView)
		if err != nil {
			log.Fatalf("stock report: %v", err)
		}
		join, err := analytics.Join(p, salesView, stockView)
		if err != nil {
			log.Fatalf("join: %v", err)
		}

		fmt.Printf("morning report: %d orders between %v and %v\n",
			sales.Orders, sales.FirstOrderAt, sales.LastOrderAt)
		fmt.Printf("stock report: %d items touched\n", stock.ItemsTouched)
		fmt.Printf("cross-check: %d/%d stock rows match a recorded order (%d unmatched)\n",
			join.Matched, join.StockRows, join.Unmatched)

		p.Wait(afternoon)
		sys.CatchUp(p, "shop")
		fmt.Printf("meanwhile the main site completed %d total orders; replication RPO is %v\n",
			bp.Shop.Completed.Value(), sys.RPO("shop"))
		fmt.Printf("the frozen snapshot still reports %d orders — analytics and business never interfered\n",
			sales.Orders)
	})

	sys.Env.Run(time.Hour)
}
