// Disaster drill: what the demo could not show on stage. The main site is
// lost mid-replication; the backup site recovers. Run twice — once with a
// consistency group (the paper's configuration) and once with independent
// per-volume replication — the second recovery yields a collapsed backup:
// stock movements whose orders never existed.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	const trials, orders = 20, 300

	fmt.Printf("running %d disaster drills per configuration (%d orders each, cut mid-replication)...\n\n",
		trials, orders)

	cg, err := experiments.E6Collapse(1000, trials, orders, experiments.ModeADC)
	if err != nil {
		log.Fatal(err)
	}
	noCG, err := experiments.E6Collapse(1000, trials, orders, experiments.ModeADCNoCG)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.E6Table([]experiments.CollapseResult{cg, noCG}))

	fmt.Printf("with the consistency group, %d/%d recoveries were business-consistent\n",
		cg.Trials-cg.Collapsed, cg.Trials)
	fmt.Printf("without it, %d/%d backups were collapsed — stock updates from orders the sales DB never saw\n",
		noCG.Collapsed, noCG.Trials)
	fmt.Println("\nrecovery-time view (downtime grows with the WAL replay the image needs):")

	rec, err := experiments.E8Recovery(2000, []int{20, 80, 200}, experiments.ModeADC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.E8Table(rec))
}
