// Ransomware drill: the §I incident class the demo system protects
// against. Replication alone is NOT protection — ADC dutifully copies the
// attacker's encryption to the backup site. The snapshot group taken at
// the backup site before the attack is what saves the business: clone
// volumes from it, run database recovery, and the orders are back.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/csiplugin"
	"repro/internal/db"
	"repro/internal/sim"
)

func main() {
	sys := core.NewSystem(core.Config{Seed: 1337})

	sys.Env.Process("drill", func(p *sim.Proc) {
		bp, err := sys.DeployBusinessProcess(p, "shop")
		if err != nil {
			log.Fatalf("deploy: %v", err)
		}
		if err := sys.EnableBackup(p, "shop"); err != nil {
			log.Fatalf("backup: %v", err)
		}
		if err := bp.Shop.Run(p, 50); err != nil {
			log.Fatalf("orders: %v", err)
		}
		sys.CatchUp(p, "shop")

		// The nightly snapshot group at the backup site — the restore point.
		group, err := sys.SnapshotBackup(p, "shop", "nightly")
		if err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		fmt.Println("nightly snapshot group taken at the backup site (50 orders)")

		// The attack: garbage written over the main site's sales volume.
		salesVol, err := sys.Main.Array.Volume(csiplugin.VolumeIDForClaim("shop", "sales"))
		if err != nil {
			log.Fatal(err)
		}
		garbage := make([]byte, sys.Main.Array.Config().BlockSize)
		for i := range garbage {
			garbage[i] = 0x66
		}
		for b := int64(0); b < 64; b++ {
			if _, err := salesVol.Write(p, b, garbage); err != nil {
				log.Fatalf("attack write: %v", err)
			}
		}
		fmt.Println("ATTACK: sales volume encrypted at the main site")

		// Replication faithfully copies the damage.
		sys.CatchUp(p, "shop")
		backupSales, _ := sys.Backup.Array.Volume(csiplugin.VolumeIDForClaim("shop", "sales"))
		if _, err := db.OpenView(p, "backup-sales", backupSales, sys.Cfg.DB); err != nil {
			fmt.Printf("backup replica is ALSO damaged (as expected): %v\n", err)
		} else {
			fmt.Println("unexpected: backup replica still opens")
		}

		// Recovery: clone the nightly snapshot into fresh volumes and run
		// ordinary database recovery on them.
		start := p.Now()
		salesSnap := group.Snapshot(csiplugin.VolumeIDForClaim("shop", "sales"))
		stockSnap := group.Snapshot(csiplugin.VolumeIDForClaim("shop", "stock"))
		salesClone, err := sys.Backup.Array.CloneVolume(p, salesSnap.ID(), "restored-sales")
		if err != nil {
			log.Fatalf("clone: %v", err)
		}
		stockClone, err := sys.Backup.Array.CloneVolume(p, stockSnap.ID(), "restored-stock")
		if err != nil {
			log.Fatalf("clone: %v", err)
		}
		salesDB, err := db.Open(p, "restored-sales", salesClone, sys.Cfg.DB)
		if err != nil {
			log.Fatalf("recovery: %v", err)
		}
		stockDB, err := db.Open(p, "restored-stock", stockClone, sys.Cfg.DB)
		if err != nil {
			log.Fatalf("recovery: %v", err)
		}
		fmt.Printf("restored from the nightly snapshot in %v (clone + WAL recovery)\n", p.Now()-start)

		rep, err := analytics.Sales(p, salesDB)
		if err != nil {
			log.Fatalf("report: %v", err)
		}
		join, err := analytics.Join(p, salesDB, stockDB)
		if err != nil {
			log.Fatalf("join: %v", err)
		}
		fmt.Printf("recovered %d orders; %d/%d stock rows consistent with them\n",
			rep.Orders, join.Matched, join.StockRows)
		if rep.Orders == 50 && join.Unmatched == 0 {
			fmt.Println("business data fully recovered — snapshots, not replication, defeat ransomware")
		}

		// The restored system accepts new business immediately.
		tx := salesDB.Begin()
		tx.Put(9001, []byte("first post-recovery order"))
		if err := tx.Commit(p); err != nil {
			log.Fatalf("post-recovery commit: %v", err)
		}
		fmt.Println("first post-recovery order committed")
	})

	sys.Env.Run(time.Hour)
}
