// Quickstart: bring up the two-site demonstration system, tag the
// namespace, run some business, and show that the backup site has a
// consistent copy — the paper's Fig. 1 pipeline in ~60 lines.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	sys := core.NewSystem(core.Config{Seed: 42})

	sys.Env.Process("quickstart", func(p *sim.Proc) {
		// Deploy the e-commerce business process: a namespace with a
		// transactional app over sales and stock databases.
		bp, err := sys.DeployBusinessProcess(p, "shop")
		if err != nil {
			log.Fatalf("deploy: %v", err)
		}
		fmt.Println("deployed business process in namespace", bp.Namespace)

		// Step 1 — backup configuration: one user operation (the tag);
		// the namespace operator does the rest.
		if err := sys.EnableBackup(p, "shop"); err != nil {
			log.Fatalf("enable backup: %v", err)
		}
		fmt.Println("backup configured: ADC with a consistency group")

		// Business processing continues, unslowed.
		if err := bp.Shop.Run(p, 100); err != nil {
			log.Fatalf("orders: %v", err)
		}
		fmt.Printf("placed 100 orders, mean latency %v (link RTT is %v)\n",
			bp.Shop.Latency.Mean(), sys.Links.RTT())

		// Step 2 — snapshot development at the backup site.
		sys.CatchUp(p, "shop")
		group, err := sys.SnapshotBackup(p, "shop", "quickstart")
		if err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		fmt.Printf("snapshot group %q: %d volumes frozen at %v\n",
			group.Name(), len(group.Snapshots()), group.TakenAt())

		// Step 3 — verify the backup is consistent and complete.
		salesView, stockView, err := sys.AnalyticsDBs(p, "shop", group)
		if err != nil {
			log.Fatalf("analytics open: %v", err)
		}
		rep := consistency.Verify(salesView, stockView,
			bp.Shop.SalesCommitOrder(), bp.Shop.StockCommitOrder())
		fmt.Printf("backup verification: %v\n", rep)
		if rep.Collapsed() {
			log.Fatal("backup collapsed — this must never happen with consistency groups")
		}
		fmt.Println("backup is consistent: the business process is recoverable at the backup site")
	})

	end := sys.Env.Run(time.Hour)
	fmt.Printf("simulation finished at virtual time %v\n", end)
}
