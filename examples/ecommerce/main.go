// E-commerce slowdown comparison: the same order workload under no
// replication, asynchronous data copy, and synchronous data copy, across a
// range of inter-site distances. This is the experiment behind the paper's
// headline claim that ADC eliminates system slowdown (§I).
//
// The RTT values map to physical distance: ~2ms is metro, ~20ms is
// in-region, ~100ms is cross-continent.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
)

func main() {
	rtts := []time.Duration{
		2 * time.Millisecond,
		10 * time.Millisecond,
		20 * time.Millisecond,
		100 * time.Millisecond,
	}
	fmt.Println("running the order workload under three replication modes...")
	results, err := experiments.E5Slowdown(7, rtts, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.E5Table(results))

	// Highlight the business takeaway.
	var adc100, sdc100 experiments.SlowdownResult
	for _, r := range results {
		if r.RTT == 100*time.Millisecond {
			switch r.Mode {
			case experiments.ModeADC:
				adc100 = r
			case experiments.ModeSDC:
				sdc100 = r
			}
		}
	}
	fmt.Printf("at cross-continent distance, SDC orders take %v while ADC orders take %v (%.0fx slower)\n",
		sdc100.MeanOrder, adc100.MeanOrder,
		float64(sdc100.MeanOrder)/float64(adc100.MeanOrder))
	fmt.Println("the price of ADC is a nonzero RPO — run examples/disaster to see it")
}
